(** The dune library map: which modules exist in the project, which
    library (dune [(name ...)]) each belongs to, and how qualified
    references like [Sparse_graph.Graph.degree] or [Parallel.Pool.map]
    resolve to project modules. *)

type entry = { path : string; module_name : string; library : string }

type t

(** [build ~libraries sources] indexes [sources]. [libraries] maps a
    directory (as it appears in source paths, e.g. ["lib/graph"]) to the
    dune library name (e.g. ["sparse_graph"]); directories without an
    entry fall back to the directory basename. *)
val build : libraries:(string * string) list -> Source.t list -> t

val entries : t -> entry list

val find_module : t -> string -> entry list
(** All entries with the given module name (several libraries may define
    the same module basename). *)

val is_wrapper : t -> string -> string option
(** [is_wrapper t "Parallel"] is [Some "parallel"] when some library's
    wrapper module is named [Parallel]. *)

(** [resolve t ~current_module comps] maps a flattened identifier path to
    a project-level value name ["Module.value"]:
    - [["helper"]] resolves into [current_module];
    - the first component naming a project module wins, the following
      lowercase component is the value (handles both [Graph.degree] and
      [Sparse_graph.Graph.degree]);
    - a leading library-wrapper component restricts the module lookup to
      that library.
    Returns [None] for identifiers outside the project (stdlib, locals). *)
val resolve : t -> current_module:string -> string list -> string option
