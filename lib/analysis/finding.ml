type severity = Error | Warning

type t = {
  rule : string;
  severity : severity;
  file : string;
  line : int;
  col : int;
  message : string;
}

let at ~rule ~severity ~file ~line ~col message =
  { rule; severity; file; line; col; message }

let v ~rule ~severity ~loc message =
  let p = loc.Location.loc_start in
  at ~rule ~severity ~file:p.Lexing.pos_fname ~line:p.Lexing.pos_lnum
    ~col:(p.Lexing.pos_cnum - p.Lexing.pos_bol)
    message

let order a b =
  let c = compare a.file b.file in
  if c <> 0 then c
  else
    let c = compare a.line b.line in
    if c <> 0 then c
    else
      let c = compare a.col b.col in
      if c <> 0 then c else compare a.rule b.rule

let severity_name = function Error -> "error" | Warning -> "warning"

let to_text f =
  Printf.sprintf "%s:%d:%d: [%s] %s" f.file f.line f.col f.rule f.message

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json ?(extra = []) f =
  let fields =
    [
      ("rule", Printf.sprintf "%S" f.rule);
      ("severity", Printf.sprintf "%S" (severity_name f.severity));
      ("file", Printf.sprintf "\"%s\"" (json_escape f.file));
      ("line", string_of_int f.line);
      ("col", string_of_int f.col);
      ("message", Printf.sprintf "\"%s\"" (json_escape f.message));
    ]
    @ extra
  in
  "{"
  ^ String.concat ", "
      (List.map (fun (k, v) -> Printf.sprintf "%S: %s" k v) fields)
  ^ "}"
