(** Value-level definition/call graph across the project. Nodes are
    module-level [let]-bound values keyed by ["Module.value"] (values
    inside nested modules are keyed ["Module.Sub.value"] and additionally
    answer to the short ["Module.value"] form, which is what intra-file
    references resolve to); edges go from a definition to every project
    value its body references (resolved through {!Project.resolve}, so
    cross-module and library-wrapper references are followed). *)

type def = {
  qname : string;  (** "Module.value" *)
  module_name : string;
  name : string;
  loc : Location.t;
  mutable_kind : string option;
      (** [Some "Hashtbl.create"], [Some "ref"], ... when the binding is
          toplevel mutable state rather than a function/constant *)
  params : (Asttypes.arg_label * string option) list;
  body : Parsetree.expression;
  refs : string list;  (** resolved qnames referenced by [body], deduped *)
}

type t

val build : Project.t -> (Source.t * Parsetree.structure) list -> t

val find : t -> string -> def option
val defs : t -> def list

(** Transitive closure over [refs], seeds included; sorted. *)
val reachable : t -> string list -> string list

(** The subset of [reachable] that is toplevel mutable state. *)
val reachable_mutable : t -> string list -> def list
