module SMap = Map.Make (String)

type entry = { path : string; module_name : string; library : string }

type t = {
  all : entry list;
  by_module : entry list SMap.t;
  wrappers : string SMap.t;  (* "Parallel" -> "parallel" *)
}

let build ~libraries sources =
  let library_of_dir dir =
    match List.assoc_opt dir libraries with
    | Some name -> name
    | None -> Filename.basename dir
  in
  let all =
    List.map
      (fun (s : Source.t) ->
        {
          path = s.Source.path;
          module_name = Source.module_name s;
          library = library_of_dir (Filename.dirname s.Source.path);
        })
      sources
  in
  let by_module =
    List.fold_left
      (fun acc e ->
        let cur = Option.value (SMap.find_opt e.module_name acc) ~default:[] in
        SMap.add e.module_name (e :: cur) acc)
      SMap.empty all
  in
  let wrappers =
    List.fold_left
      (fun acc e ->
        SMap.add (String.capitalize_ascii e.library) e.library acc)
      SMap.empty all
  in
  { all; by_module; wrappers }

let entries t = t.all

let find_module t name =
  Option.value (SMap.find_opt name t.by_module) ~default:[]

let is_wrapper t name = SMap.find_opt name t.wrappers

let is_value_component s =
  String.length s > 0 && (s.[0] = Char.lowercase_ascii s.[0])

let resolve t ~current_module comps =
  match comps with
  | [ v ] when is_value_component v ->
      if find_module t current_module <> [] then
        Some (current_module ^ "." ^ v)
      else None
  | _ ->
      let arr = Array.of_list comps in
      let n = Array.length arr in
      let rec scan i restrict_lib =
        if i >= n - 1 then None
        else
          let c = arr.(i) in
          if is_value_component c then None
          else
            let candidates = find_module t c in
            let candidates =
              match restrict_lib with
              | Some lib ->
                  let inside =
                    List.filter (fun e -> e.library = lib) candidates
                  in
                  if inside <> [] then inside else candidates
              | None -> candidates
            in
            if candidates <> [] && is_value_component arr.(i + 1) then
              Some (c ^ "." ^ arr.(i + 1))
            else
              (* a library wrapper component narrows the next lookup *)
              scan (i + 1)
                (match is_wrapper t c with
                | Some lib -> Some lib
                | None -> restrict_lib)
      in
      scan 0 None
