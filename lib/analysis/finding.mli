(** A single static-analysis finding: one rule firing at one source
    location. Findings are value types; the engine sorts and dedups them,
    the reporters render them. *)

type severity = Error | Warning

type t = {
  rule : string;  (** rule id, e.g. "D002" *)
  severity : severity;
  file : string;  (** path as scanned (repo-relative under the lint root) *)
  line : int;     (** 1-based *)
  col : int;      (** 0-based, matching compiler diagnostics *)
  message : string;
}

(** [v ~rule ~severity ~loc msg] places a finding at the start of [loc]. *)
val v : rule:string -> severity:severity -> loc:Location.t -> string -> t

(** [at ~rule ~severity ~file ~line ~col msg] for locations not tied to a
    Parsetree node (parse errors, engine-level diagnostics). *)
val at :
  rule:string ->
  severity:severity ->
  file:string ->
  line:int ->
  col:int ->
  string ->
  t

(** Total order: file, then line, then column, then rule id. *)
val order : t -> t -> int

val severity_name : severity -> string

(** ["file:line:col: [rule] message"] *)
val to_text : t -> string

(** One JSON object (no trailing newline); [extra] appends additional
    pre-rendered fields, e.g. [["status", {|"fresh"|}]]. *)
val to_json : ?extra:(string * string) list -> t -> string

(** Minimal JSON string escaping (quotes, backslash, control chars). *)
val json_escape : string -> string
