open Sparse_graph

let is_dominating g vs =
  let n = Graph.n g in
  let covered = Array.make n false in
  List.iter
    (fun v ->
      covered.(v) <- true;
      Graph.iter_neighbors g v (fun w -> covered.(w) <- true))
    vs;
  Array.for_all Fun.id covered

let greedy g =
  let n = Graph.n g in
  let covered = Array.make n false in
  let remaining = ref n in
  let chosen = ref [] in
  while !remaining > 0 do
    (* vertex covering the most uncovered vertices (closed neighborhood) *)
    let best = ref (-1) and best_gain = ref (-1) in
    for v = 0 to n - 1 do
      let gain =
        (if covered.(v) then 0 else 1)
        + Graph.fold_neighbors g v
            (fun acc w -> if covered.(w) then acc else acc + 1)
            0
      in
      if gain > !best_gain then begin
        best_gain := gain;
        best := v
      end
    done;
    let v = !best in
    chosen := v :: !chosen;
    if not covered.(v) then begin
      covered.(v) <- true;
      decr remaining
    end;
    Graph.iter_neighbors g v (fun w ->
        if not covered.(w) then begin
          covered.(w) <- true;
          decr remaining
        end)
  done;
  List.sort compare !chosen

let exact g =
  let n = Graph.n g in
  if n > 150 then invalid_arg "Dominating.exact: graph too large";
  if n = 0 then []
  else begin
    let closed v =
      v :: Graph.fold_neighbors g v (fun acc w -> w :: acc) []
    in
    let delta1 = Graph.max_degree g + 1 in
    let incumbent = ref (greedy g) in
    let best_size = ref (List.length !incumbent) in
    (* covered_count.(v) = how many chosen vertices dominate v *)
    let covered = Array.make n 0 in
    let undominated = ref n in
    let chosen = ref [] in
    let choose v =
      chosen := v :: !chosen;
      List.iter
        (fun w ->
          if covered.(w) = 0 then decr undominated;
          covered.(w) <- covered.(w) + 1)
        (closed v)
    in
    let unchoose v =
      chosen := List.tl !chosen;
      List.iter
        (fun w ->
          covered.(w) <- covered.(w) - 1;
          if covered.(w) = 0 then incr undominated)
        (closed v)
    in
    let rec solve depth =
      if !undominated = 0 then begin
        if depth < !best_size then begin
          best_size := depth;
          incumbent := List.sort compare !chosen
        end
      end
      else begin
        let bound = depth + (((!undominated + delta1) - 1) / delta1) in
        if bound < !best_size then begin
          (* pick the undominated vertex with the fewest dominators: its
             closed neighborhood is the branching set *)
          let pick = ref (-1) and pick_opts = ref max_int in
          for v = 0 to n - 1 do
            if covered.(v) = 0 then begin
              let opts = Graph.degree g v + 1 in
              if opts < !pick_opts then begin
                pick_opts := opts;
                pick := v
              end
            end
          done;
          List.iter
            (fun u ->
              choose u;
              solve (depth + 1);
              unchoose u)
            (closed !pick)
        end
      end
    in
    solve 0;
    !incumbent
  end

let exact_size g = List.length (exact g)

let brute_force g =
  let n = Graph.n g in
  if n > 20 then invalid_arg "Dominating.brute_force: too large";
  let closed = Array.make n 0 in
  for v = 0 to n - 1 do
    closed.(v) <- 1 lsl v;
    Graph.iter_neighbors g v (fun w -> closed.(v) <- closed.(v) lor (1 lsl w))
  done;
  let full = (1 lsl n) - 1 in
  let best = ref n in
  for s = 0 to full do
    let cover = ref 0 and size = ref 0 in
    for v = 0 to n - 1 do
      if s land (1 lsl v) <> 0 then begin
        incr size;
        cover := !cover lor closed.(v)
      end
    done;
    if !cover = full && !size < !best then best := !size
  done;
  !best
