open Sparse_graph

let exact g =
  let independent = Mis.exact g in
  let in_is = Array.make (Graph.n g) false in
  List.iter (fun v -> in_is.(v) <- true) independent;
  let cover = ref [] in
  for v = Graph.n g - 1 downto 0 do
    if not in_is.(v) then cover := v :: !cover
  done;
  !cover

let exact_size g = Graph.n g - Mis.exact_size g

let two_approx g =
  let matched = Array.make (Graph.n g) false in
  let cover = ref [] in
  Graph.iter_edges g (fun _ u v ->
      if (not matched.(u)) && not matched.(v) then begin
        matched.(u) <- true;
        matched.(v) <- true;
        cover := v :: u :: !cover
      end);
  List.sort compare !cover

let is_cover g vs =
  let chosen = Array.make (Graph.n g) false in
  List.iter (fun v -> chosen.(v) <- true) vs;
  Graph.fold_edges g (fun acc _ u v -> acc && (chosen.(u) || chosen.(v))) true
