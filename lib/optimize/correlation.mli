(** Agreement-maximization correlation clustering (Section 3.3).

    Edges carry +/- labels ([true] = positive). A clustering is a vertex
    labelling; its score is the number of intra-cluster positive edges plus
    inter-cluster negative edges. The exact solver is the leader's local
    computation (subset DP, O(3^n)); heuristics cover larger inputs. *)

type labelling = bool array (* per edge id: true = positive *)

(** [score g labels clustering] evaluates a clustering (vertex -> cluster
    id). *)
val score : Sparse_graph.Graph.t -> labelling -> int array -> int

(** [trivial g labels] is the paper's gamma(G) >= |E| / 2 witness: the
    better of all-singletons and everything-in-one-cluster. *)
val trivial : Sparse_graph.Graph.t -> labelling -> int array

(** [exact g labels] computes an optimal clustering by subset DP.
    @raise Invalid_argument if [Graph.n g > 16]. *)
val exact : Sparse_graph.Graph.t -> labelling -> int array

(** [exact_score g labels] is the optimal score. Same limit. *)
val exact_score : Sparse_graph.Graph.t -> labelling -> int

(** [pivot g labels ~seed] is the randomized pivot heuristic: repeatedly
    pick an unclustered pivot and cluster it with its unclustered positive
    neighbors. *)
val pivot : Sparse_graph.Graph.t -> labelling -> seed:int -> int array

(** [local_improve g labels clustering ~passes] greedily moves single
    vertices between (neighboring or fresh) clusters while the score
    improves. *)
val local_improve :
  Sparse_graph.Graph.t -> labelling -> int array -> passes:int -> int array

(** [solve g labels ~seed] is the leader's solver: {!exact} when feasible,
    otherwise the best of {!trivial} and locally-improved {!pivot}. *)
val solve : Sparse_graph.Graph.t -> labelling -> seed:int -> int array

(** Number of clusters used by a clustering (distinct labels). *)
val cluster_count : int array -> int
