open Sparse_graph
module S = Set.Make (Int)
module M = Map.Make (Int)

(* functional adjacency map: vertex -> neighbor set; absent = deleted *)

let adjacency g =
  let add v w m =
    M.update v (function None -> Some (S.singleton w) | Some s -> Some (S.add w s)) m
  in
  let m = ref M.empty in
  for v = 0 to Graph.n g - 1 do
    m := M.add v S.empty !m
  done;
  Graph.iter_edges g (fun _ u v -> m := add u v (add v u !m));
  !m

let delete v adj =
  match M.find_opt v adj with
  | None -> adj
  | Some nbrs ->
      let adj = M.remove v adj in
      S.fold (fun w acc -> M.update w (Option.map (S.remove v)) acc) nbrs adj

let delete_closed v adj =
  match M.find_opt v adj with
  | None -> adj
  | Some nbrs -> S.fold delete nbrs (delete v adj)

(* greedy maximal matching size on the functional graph: used for the
   pruning bound alpha <= n - mu *)
let matching_bound adj =
  let used = ref S.empty in
  let count = ref 0 in
  M.iter
    (fun v nbrs ->
      if not (S.mem v !used) then begin
        let partner =
          S.fold
            (fun w acc ->
              match acc with
              | Some _ -> acc
              | None -> if S.mem w !used then None else Some w)
            nbrs None
        in
        match partner with
        | Some w ->
            used := S.add v (S.add w !used);
            incr count
        | None -> ()
      end)
    adj;
  !count

let rec greedy_on adj acc =
  if M.is_empty adj then acc
  else begin
    let v, _ =
      M.fold
        (fun v nbrs (bv, bd) ->
          let d = S.cardinal nbrs in
          if d < bd then (v, d) else (bv, bd))
        adj (-1, max_int)
    in
    greedy_on (delete_closed v adj) (v :: acc)
  end

let exact g =
  if Graph.n g > 400 then
    invalid_arg "Mis.exact: graph too large";
  let fresh = ref (Graph.n g) in
  let best_size = ref 0 in
  (* returns (size, set); [depth_bound] prunes via alpha <= |V| - mu *)
  let rec solve adj current =
    let n_alive = M.cardinal adj in
    if n_alive = 0 then begin
      if current > !best_size then best_size := current;
      (0, S.empty)
    end
    else begin
      let ub = n_alive - matching_bound adj in
      if current + ub <= !best_size then (min_int / 2, S.empty)
      else begin
        (* pick min-degree vertex for reductions, max-degree for branching *)
        let vmin = ref (-1) and dmin = ref max_int in
        let vmax = ref (-1) and dmax = ref (-1) in
        M.iter
          (fun v nbrs ->
            let d = S.cardinal nbrs in
            if d < !dmin then begin
              dmin := d;
              vmin := v
            end;
            if d > !dmax then begin
              dmax := d;
              vmax := v
            end)
          adj;
        if !dmin = 0 then begin
          let size, set = solve (M.remove !vmin adj) (current + 1) in
          (size + 1, S.add !vmin set)
        end
        else if !dmin = 1 then begin
          let size, set = solve (delete_closed !vmin adj) (current + 1) in
          (size + 1, S.add !vmin set)
        end
        else if !dmin = 2 then begin
          let v = !vmin in
          let nbrs = M.find v adj in
          match S.elements nbrs with
          | [ a; b ] ->
              if S.mem b (M.find a adj) then begin
                (* triangle: v is always safe to take *)
                let size, set = solve (delete_closed v adj) (current + 1) in
                (size + 1, S.add v set)
              end
              else begin
                (* fold v, a, b into a fresh vertex f *)
                let f = !fresh in
                incr fresh;
                let na = M.find a adj and nb = M.find b adj in
                let outside = S.remove v (S.union na nb) in
                let adj' = delete v (delete a (delete b adj)) in
                let adj' =
                  S.fold
                    (fun w acc -> M.update w (Option.map (S.add f)) acc)
                    outside adj'
                in
                let adj' = M.add f outside adj' in
                let size, set = solve adj' (current + 1) in
                if S.mem f set then (size + 1, S.add a (S.add b (S.remove f set)))
                else (size + 1, S.add v set)
              end
          | _ -> assert false (* lint: allow S001 dmin = 2 forces two neighbors *)
        end
        else begin
          let u = !vmax in
          (* branch 1: take u *)
          let s1, set1 = solve (delete_closed u adj) (current + 1) in
          let take = (s1 + 1, S.add u set1) in
          (* branch 2: skip u *)
          let s2, set2 = solve (delete u adj) current in
          if s2 > fst take then (s2, set2) else take
        end
      end
    end
  in
  let greedy_set = greedy_on (adjacency g) [] in
  (* seed the incumbent with the greedy solution: tightens pruning, and a
     subtree that can only tie it is safely cut because we fall back on the
     greedy set below *)
  best_size := List.length greedy_set;
  let _, set = solve (adjacency g) 0 in
  (* folded vertices were translated on the way out; only originals remain *)
  let found = List.filter (fun v -> v < Graph.n g) (S.elements set) in
  if List.length found >= List.length greedy_set then found
  else List.sort compare greedy_set

let exact_size g = List.length (exact g)

let greedy g = List.sort compare (greedy_on (adjacency g) [])

let is_independent g vs =
  let rec go = function
    | [] -> true
    | v :: rest ->
        List.for_all (fun u -> not (Graph.mem_edge g u v)) rest && go rest
  in
  go vs

let weight_of w vs = List.fold_left (fun acc v -> acc + w.(v)) 0 vs

let exact_weighted g w =
  let n0 = Graph.n g in
  if n0 > 200 then invalid_arg "Mis.exact_weighted: graph too large";
  Array.iter
    (fun x -> if x <= 0 then invalid_arg "Mis.exact_weighted: weights must be positive")
    w;
  let best = ref 0 in
  (* weights live in a functional map because pendant folding rewrites them *)
  let rec solve adj wts current =
    if M.is_empty adj then begin
      if current > !best then best := current;
      (0, S.empty)
    end
    else begin
      (* bound: total weight minus, for each greedily matched edge, the
         lighter endpoint (an independent set keeps at most one endpoint) *)
      let total_w = M.fold (fun v _ acc -> acc + M.find v wts) adj 0 in
      let used = ref S.empty in
      let discount = ref 0 in
      M.iter
        (fun v nbrs ->
          if not (S.mem v !used) then begin
            let partner =
              S.fold
                (fun w acc ->
                  match acc with
                  | Some _ -> acc
                  | None -> if S.mem w !used then None else Some w)
                nbrs None
            in
            match partner with
            | Some w ->
                used := S.add v (S.add w !used);
                discount := !discount + min (M.find v wts) (M.find w wts)
            | None -> ()
          end)
        adj;
      let remaining = total_w - !discount in
      if current + remaining <= !best then (min_int / 2, S.empty)
      else begin
        let vmin = ref (-1) and dmin = ref max_int in
        let vmax = ref (-1) and dmax = ref (-1) in
        M.iter
          (fun v nbrs ->
            let d = S.cardinal nbrs in
            if d < !dmin then begin
              dmin := d;
              vmin := v
            end;
            if d > !dmax then begin
              dmax := d;
              vmax := v
            end)
          adj;
        if !dmin = 0 then begin
          let v = !vmin in
          let wv = M.find v wts in
          let value, set = solve (M.remove v adj) wts (current + wv) in
          (value + wv, S.add v set)
        end
        else if !dmin = 1 then begin
          let v = !vmin in
          let wv = M.find v wts in
          let c = S.min_elt (M.find v adj) in
          let wc = M.find c wts in
          if wv >= wc then begin
            let value, set = solve (delete_closed v adj) wts (current + wv) in
            (value + wv, S.add v set)
          end
          else begin
            (* weighted pendant folding: charge w(v) now; c's weight drops *)
            let wts' = M.add c (wc - wv) wts in
            let value, set = solve (delete v adj) wts' (current + wv) in
            if S.mem c set then (value + wv, set)
            else (value + wv, S.add v set)
          end
        end
        else begin
          let u = !vmax in
          let wu = M.find u wts in
          let v1, s1 = solve (delete_closed u adj) wts (current + wu) in
          let take = (v1 + wu, S.add u s1) in
          let v2, s2 = solve (delete u adj) wts current in
          if v2 > fst take then (v2, s2) else take
        end
      end
    end
  in
  let wts = ref M.empty in
  for v = 0 to n0 - 1 do
    wts := M.add v w.(v) !wts
  done;
  let _, set = solve (adjacency g) !wts 0 in
  let found = S.elements set in
  (* fall back on a greedy set if pruning ate all branches of equal value *)
  let greedy_set = greedy_on (adjacency g) [] in
  if weight_of w found >= weight_of w greedy_set then List.sort compare found
  else List.sort compare greedy_set

let brute_force_weighted g w =
  let n = Graph.n g in
  if n > 20 then invalid_arg "Mis.brute_force_weighted: too large";
  let adj = Array.make n 0 in
  Graph.iter_edges g (fun _ u v ->
      adj.(u) <- adj.(u) lor (1 lsl v);
      adj.(v) <- adj.(v) lor (1 lsl u));
  let best = ref 0 in
  for s = 0 to (1 lsl n) - 1 do
    let ok = ref true in
    let total = ref 0 in
    for v = 0 to n - 1 do
      if s land (1 lsl v) <> 0 then begin
        total := !total + w.(v);
        if adj.(v) land s <> 0 then ok := false
      end
    done;
    if !ok && !total > !best then best := !total
  done;
  !best

let brute_force g =
  let n = Graph.n g in
  if n > 20 then invalid_arg "Mis.brute_force: too large";
  let adj = Array.make n 0 in
  Graph.iter_edges g (fun _ u v ->
      adj.(u) <- adj.(u) lor (1 lsl v);
      adj.(v) <- adj.(v) lor (1 lsl u));
  let best = ref 0 in
  for s = 0 to (1 lsl n) - 1 do
    let ok = ref true in
    let size = ref 0 in
    for v = 0 to n - 1 do
      if s land (1 lsl v) <> 0 then begin
        incr size;
        if adj.(v) land s <> 0 then ok := false
      end
    done;
    if !ok && !size > !best then best := !size
  done;
  !best
