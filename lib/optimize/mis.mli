(** Maximum independent set solvers: the leader's local computation for
    Theorem 1.2 (exact branch-and-bound) and the paper's Omega(n) lower
    bound witness (min-degree greedy, Section 3.1).

    The exact solver uses the standard reductions — take isolated and
    pendant vertices, fold degree-2 vertices — and branches on a
    maximum-degree vertex, pruning with the matching bound
    [alpha(G) <= n - mu(G)]. Exponential worst case but fast on the sparse
    (H-minor-free) clusters the framework produces. *)

(** [exact g] returns a maximum independent set (sorted).
    @raise Invalid_argument if [Graph.n g > 400] (guard against blowup). *)
val exact : Sparse_graph.Graph.t -> int list

(** [exact_size g] is [alpha(G)]. Same limit. *)
val exact_size : Sparse_graph.Graph.t -> int

(** [greedy g] repeatedly takes a minimum-degree vertex and deletes its
    closed neighborhood; guarantees size at least [n / (2d + 1)] on graphs
    of edge density at most [d] (Section 3.1). *)
val greedy : Sparse_graph.Graph.t -> int list

(** [is_independent g vs] checks pairwise non-adjacency. *)
val is_independent : Sparse_graph.Graph.t -> int list -> bool

(** [brute_force g] enumerates all subsets (for cross-checking; n <= 20). *)
val brute_force : Sparse_graph.Graph.t -> int

(** {1 Weighted variant}

    Weighted MAXIS is the extension discussed in the paper's Section 1.1
    (cf. Bar-Yehuda et al. and Kawarabayashi et al.); the framework solves
    it per cluster exactly like the unweighted case. *)

(** [exact_weighted g w] returns a maximum-weight independent set
    ([w.(v) > 0] for every vertex). Branch-and-bound with isolated-vertex
    and weighted-pendant-folding reductions.
    @raise Invalid_argument if [Graph.n g > 200] or some weight is not
    positive. *)
val exact_weighted : Sparse_graph.Graph.t -> int array -> int list

(** Total weight of a vertex set. *)
val weight_of : int array -> int list -> int

(** [brute_force_weighted g w] for cross-checking (n <= 20). *)
val brute_force_weighted : Sparse_graph.Graph.t -> int array -> int
