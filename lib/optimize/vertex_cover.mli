(** Minimum vertex cover, by complementation of maximum independent sets
    (Gallai: VC = V minus a maximum independent set) plus the classic
    matching-based 2-approximation baseline. *)

(** [exact g] returns a minimum vertex cover (sorted). Size limits as
    {!Mis.exact}. *)
val exact : Sparse_graph.Graph.t -> int list

(** Same as [List.length (exact g)]. *)
val exact_size : Sparse_graph.Graph.t -> int

(** [two_approx g] takes both endpoints of a greedily maximal matching. *)
val two_approx : Sparse_graph.Graph.t -> int list

(** Every edge has an endpoint in the set. *)
val is_cover : Sparse_graph.Graph.t -> int list -> bool
