open Sparse_graph

type labelling = bool array

let score g labels clustering =
  Graph.fold_edges g
    (fun acc e u v ->
      let same = clustering.(u) = clustering.(v) in
      if same = labels.(e) then acc + 1 else acc)
    0

let trivial g labels =
  let n = Graph.n g in
  let singletons = Array.init n Fun.id in
  let one = Array.make n 0 in
  if score g labels singletons >= score g labels one then singletons else one

let exact_limit = 16

(* q(C) = (+edges inside C) - (-edges inside C); total score =
   sum_clusters q(C) + (total negative edges), so maximizing sum q is
   equivalent. *)
let exact g labels =
  let n = Graph.n g in
  if n > exact_limit then invalid_arg "Correlation.exact: graph too large";
  if n = 0 then [||]
  else begin
    let plus = Array.make n 0 and minus = Array.make n 0 in
    Graph.iter_edges g (fun e u v ->
        if labels.(e) then begin
          plus.(u) <- plus.(u) lor (1 lsl v);
          plus.(v) <- plus.(v) lor (1 lsl u)
        end
        else begin
          minus.(u) <- minus.(u) lor (1 lsl v);
          minus.(v) <- minus.(v) lor (1 lsl u)
        end);
    let size = 1 lsl n in
    let q = Array.make size 0 in
    for s = 1 to size - 1 do
      let v = ref 0 in
      while s land (1 lsl !v) = 0 do
        incr v
      done;
      let rest = s lxor (1 lsl !v) in
      q.(s) <-
        q.(rest)
        + Spectral.Popcount.popcount (plus.(!v) land rest)
        - Spectral.Popcount.popcount (minus.(!v) land rest)
    done;
    (* best(S): max over first clusters C (containing S's lowest vertex) *)
    let best = Array.make size 0 in
    let choice = Array.make size 0 in
    for s = 1 to size - 1 do
      let v = ref 0 in
      while s land (1 lsl !v) = 0 do
        incr v
      done;
      let low = 1 lsl !v in
      let rest = s lxor low in
      (* iterate submasks t of rest; cluster C = t | low *)
      let bestv = ref min_int and bestc = ref low in
      let t = ref rest in
      let continue = ref true in
      while !continue do
        let c = !t lor low in
        let cand = q.(c) + best.(s lxor c) in
        if cand > !bestv then begin
          bestv := cand;
          bestc := c
        end;
        if !t = 0 then continue := false else t := (!t - 1) land rest
      done;
      best.(s) <- !bestv;
      choice.(s) <- !bestc
    done;
    let clustering = Array.make n 0 in
    let s = ref (size - 1) in
    let next = ref 0 in
    while !s <> 0 do
      let c = choice.(!s) in
      for v = 0 to n - 1 do
        if c land (1 lsl v) <> 0 then clustering.(v) <- !next
      done;
      incr next;
      s := !s lxor c
    done;
    clustering
  end

let exact_score g labels = score g labels (exact g labels)

let pivot g labels ~seed =
  let n = Graph.n g in
  let st = Random.State.make [| seed; 337 |] in
  let order = Array.init n Fun.id in
  for i = n - 1 downto 1 do
    let j = Random.State.int st (i + 1) in
    let t = order.(i) in
    order.(i) <- order.(j);
    order.(j) <- t
  done;
  let clustering = Array.make n (-1) in
  let next = ref 0 in
  Array.iter
    (fun p ->
      if clustering.(p) < 0 then begin
        let c = !next in
        incr next;
        clustering.(p) <- c;
        Graph.iter_incident g p (fun w e ->
            if clustering.(w) < 0 && labels.(e) then clustering.(w) <- c)
      end)
    order;
  clustering

let local_improve g labels clustering ~passes =
  let n = Graph.n g in
  let cl = Array.copy clustering in
  let next_fresh = ref (Array.fold_left max 0 cl + 1) in
  (* gain of moving v into cluster c: recompute v's incident agreement *)
  let agreement_of v c =
    Graph.fold_neighbors g v
      (fun acc w ->
        let e = Graph.find_edge g v w in
        let same = cl.(w) = c in
        if same = labels.(e) then acc + 1 else acc)
      0
  in
  for _ = 1 to passes do
    for v = 0 to n - 1 do
      let current = agreement_of v cl.(v) in
      (* candidate clusters: neighbors' clusters plus a fresh singleton *)
      let candidates =
        Graph.fold_neighbors g v (fun acc w -> cl.(w) :: acc) [ !next_fresh ]
      in
      let best_c = ref cl.(v) and best_gain = ref current in
      List.iter
        (fun c ->
          if c <> cl.(v) then begin
            let a = agreement_of v c in
            if a > !best_gain then begin
              best_gain := a;
              best_c := c
            end
          end)
        candidates;
      if !best_c <> cl.(v) then begin
        cl.(v) <- !best_c;
        if !best_c = !next_fresh then incr next_fresh
      end
    done
  done;
  cl

let solve g labels ~seed =
  let n = Graph.n g in
  if n <= exact_limit then exact g labels
  else begin
    (* multi-start local search: trivial clusterings, positive-edge
       components (the natural seed on planted data), and several pivots *)
    let positive_components =
      let pos =
        Graph.fold_edges g
          (fun acc e u v -> if labels.(e) then (u, v) :: acc else acc)
          []
      in
      let sub = Graph.of_edges n pos in
      fst (Traversal.components sub)
    in
    let candidates =
      trivial g labels
      :: local_improve g labels positive_components ~passes:4
      :: local_improve g labels (Array.init n Fun.id) ~passes:4
      :: local_improve g labels (Array.make n 0) ~passes:4
      :: List.map
           (fun i ->
             local_improve g labels (pivot g labels ~seed:(seed + i)) ~passes:4)
           [ 0; 1; 2 ]
    in
    List.fold_left
      (fun best c -> if score g labels c > score g labels best then c else best)
      (List.hd candidates) (List.tl candidates)
  end

let cluster_count clustering =
  let module S = Set.Make (Int) in
  S.cardinal (S.of_list (Array.to_list clustering))
