(** Minimum dominating set solvers.

    MDS on planar networks is the flagship problem of the LOCAL-model line
    of work the paper builds on (Section 1.4: Czygrinow et al., Amiri et
    al., Lenzen et al.); the framework's application layer exposes it as a
    measured extension (no (1 + epsilon) guarantee is claimed — unlike
    matching, OPT can be o(n) on planar graphs, so the paper's budget
    argument does not transfer directly). *)

(** [exact g] returns a minimum dominating set (sorted), by branch and
    bound: repeatedly pick an undominated vertex and branch on which closed
    neighbor dominates it, pruning with the coverage bound
    [|undominated| / (Delta + 1)].
    @raise Invalid_argument if [Graph.n g > 150]. *)
val exact : Sparse_graph.Graph.t -> int list

(** [exact_size g] is the domination number. Same limit. *)
val exact_size : Sparse_graph.Graph.t -> int

(** [greedy g] is the classic ln(Delta)-approximation: repeatedly take the
    vertex covering the most undominated vertices. *)
val greedy : Sparse_graph.Graph.t -> int list

(** [is_dominating g vs] checks every vertex is in [vs] or adjacent to it. *)
val is_dominating : Sparse_graph.Graph.t -> int list -> bool

(** [brute_force g] for cross-checking (n <= 20). *)
val brute_force : Sparse_graph.Graph.t -> int
