(** Exact minor containment for small pattern graphs.

    [H <= G] ("H is a minor of G", Section 1.2) is decided by the recursion:
    H <= G iff H is isomorphic to a subgraph of G, or H <= G/e for some edge
    e — any minor model either contracts nothing (then it is a subgraph
    after deletions) or its contractions can be performed first. Exponential
    in general: intended for small graphs (tests and cluster-local checks),
    with fast structural shortcuts for cliques of size up to 4. *)

(** [subgraph_isomorphic h g] decides whether [g] has a (not necessarily
    induced) subgraph isomorphic to [h], by backtracking with degree
    pruning. *)
val subgraph_isomorphic :
  Sparse_graph.Graph.t -> Sparse_graph.Graph.t -> bool

(** [has_minor h g] decides [h <= g].
    @raise Invalid_argument if [Graph.n g > 64] (search would explode). *)
val has_minor : Sparse_graph.Graph.t -> Sparse_graph.Graph.t -> bool

(** [has_clique_minor g t] decides [K_t <= g]. Uses structural facts for
    [t <= 4] (K3: not a forest; K4: not series-parallel), and for [t = 5]
    on planar inputs answers [false] immediately; otherwise falls back on
    the generic search (same size limit as {!has_minor}). *)
val has_clique_minor : Sparse_graph.Graph.t -> int -> bool

(** [is_series_parallel g] tests treewidth at most 2 by the degree-(<= 2)
    reduction: repeatedly delete isolated and pendant vertices and suppress
    degree-2 vertices (joining their neighbors); the graph has treewidth
    at most 2 iff this empties it. Linear-ish; no size limit. *)
val is_series_parallel : Sparse_graph.Graph.t -> bool
