open Sparse_graph

type t = {
  name : string;
  holds : Graph.t -> bool;
  forbidden_clique : int;
}

let forest =
  { name = "forest"; holds = Traversal.is_acyclic; forbidden_clique = 3 }

let linear_forest =
  {
    name = "linear-forest";
    holds = (fun g -> Traversal.is_acyclic g && Graph.max_degree g <= 2);
    forbidden_clique = 3;
  }

let series_parallel =
  {
    name = "series-parallel";
    holds = Minor_check.is_series_parallel;
    forbidden_clique = 4;
  }

(* the near-linear left-right test is the decision fast path; Demoucron
   (Planarity.is_planar) stays available when faces are needed *)
let outerplanar_fast g =
  let n = Graph.n g in
  if n = 0 then true
  else begin
    let apex = n in
    let edges =
      Graph.fold_edges g (fun acc _ u v -> (u, v) :: acc)
        (List.init n (fun v -> (v, apex)))
    in
    Lr_planarity.is_planar (Graph.of_edges (n + 1) edges)
  end

let outerplanar =
  {
    name = "outerplanar";
    holds = outerplanar_fast;
    forbidden_clique = 4;
  }

let planar =
  { name = "planar"; holds = Lr_planarity.is_planar; forbidden_clique = 5 }

let all = [ forest; linear_forest; series_parallel; outerplanar; planar ]

let smallest_forbidden_clique p =
  let rec go s =
    if s > 8 then None
    else if not (p.holds (Generators.complete s)) then Some s
    else go (s + 1)
  in
  go 1

(* minimum number of edge edits needed, lower-bounded structurally *)
let edit_lower_bound g p =
  let n = Graph.n g and m = Graph.m g in
  let _, comps = Traversal.components g in
  let cycle_rank = m - n + comps in
  match p.name with
  | "forest" -> cycle_rank
  | "linear-forest" ->
      let excess = ref 0 in
      for v = 0 to n - 1 do
        let d = Graph.degree g v in
        if d > 2 then excess := !excess + (d - 2)
      done;
      max cycle_rank ((!excess + 1) / 2)
  | "series-parallel" | "outerplanar" ->
      if n >= 2 then max 0 (m - ((2 * n) - 3)) else 0
  | "planar" -> if n >= 3 then max 0 (m - ((3 * n) - 6)) else 0
  | _ -> 0

let far_from ~epsilon g p =
  let m = Graph.m g in
  if m = 0 then false
  else
    float_of_int (edit_lower_bound g p) > epsilon *. float_of_int m
