open Sparse_graph

let subgraph_isomorphic h g =
  let nh = Graph.n h and ng = Graph.n g in
  if nh > ng || Graph.m h > Graph.m g then false
  else begin
    (* map H vertices in decreasing-degree order for earlier pruning *)
    let order = Array.init nh Fun.id in
    Array.sort (fun a b -> compare (Graph.degree h b) (Graph.degree h a)) order;
    let assigned = Array.make nh (-1) in
    let used = Array.make ng false in
    let rec place i =
      if i = nh then true
      else begin
        let hv = order.(i) in
        let ok = ref false in
        let gv = ref 0 in
        while (not !ok) && !gv < ng do
          let cand = !gv in
          incr gv;
          if (not used.(cand)) && Graph.degree g cand >= Graph.degree h hv
          then begin
            (* all already-mapped H-neighbors of hv must be G-neighbors *)
            let consistent =
              Graph.fold_neighbors h hv
                (fun acc hw ->
                  acc
                  && (assigned.(hw) < 0 || Graph.mem_edge g cand assigned.(hw)))
                true
            in
            if consistent then begin
              assigned.(hv) <- cand;
              used.(cand) <- true;
              if place (i + 1) then ok := true
              else begin
                assigned.(hv) <- -1;
                used.(cand) <- false
              end
            end
          end
        done;
        !ok
      end
    in
    place 0
  end

let has_minor h g =
  if Graph.n g > 64 then
    invalid_arg "Minor_check.has_minor: graph too large for exact search";
  let rec go g =
    Graph.n g >= Graph.n h
    && Graph.m g >= Graph.m h
    &&
    if subgraph_isomorphic h g then true
    else begin
      let m = Graph.m g in
      let rec try_edge e =
        e < m
        &&
        (let contracted, _ = Graph_ops.contract_edges g [ e ] in
         go contracted || try_edge (e + 1))
      in
      try_edge 0
    end
  in
  go g

let is_series_parallel g =
  let n = Graph.n g in
  (* mutable adjacency sets *)
  let module S = Set.Make (Int) in
  let adj = Array.make n S.empty in
  Graph.iter_edges g (fun _ u v ->
      adj.(u) <- S.add v adj.(u);
      adj.(v) <- S.add u adj.(v));
  let alive = Array.make n true in
  let queue = Queue.create () in
  for v = 0 to n - 1 do
    if S.cardinal adj.(v) <= 2 then Queue.add v queue
  done;
  let remaining = ref n in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    if alive.(v) && S.cardinal adj.(v) <= 2 then begin
      alive.(v) <- false;
      decr remaining;
      let requeue w = if S.cardinal adj.(w) <= 2 then Queue.add w queue in
      (match S.elements adj.(v) with
      | [] -> ()
      | [ a ] ->
          adj.(a) <- S.remove v adj.(a);
          requeue a
      | [ a; b ] ->
          adj.(a) <- S.add b (S.remove v adj.(a));
          adj.(b) <- S.add a (S.remove v adj.(b));
          requeue a;
          requeue b
      | _ -> assert false (* lint: allow S001 cardinal <= 2 checked on queue *));
      adj.(v) <- S.empty
    end
  done;
  !remaining = 0

let has_clique_minor g t =
  if t <= 1 then Graph.n g >= t
  else if t = 2 then Graph.m g >= 1
  else if t = 3 then not (Traversal.is_acyclic g)
  else if t = 4 then not (is_series_parallel g)
  else if t = 5 && Planarity.is_planar g then false
  else has_minor (Generators.complete t) g
