(** Planarity testing by Demoucron–Malgrange–Pertuiset face embedding.

    The graph is decomposed into biconnected blocks ({!Blocks}); each
    non-trivial block is embedded incrementally: starting from a cycle,
    repeatedly choose a fragment (bridge) of the not-yet-embedded part,
    check which faces can host it, and draw one of its paths into such a
    face. Demoucron's theorem: for a biconnected graph the greedy choice
    (prefer fragments with a unique admissible face) succeeds if and only
    if the block is planar. The quick Euler bound [m <= 3n - 6] rejects
    dense inputs immediately.

    Complexity is O(n * m) per block — ample for the paper's cluster-local
    checks, where the leader tests the topology it gathered (Section 3.4). *)

(** [is_planar g] decides planarity of an arbitrary graph. *)
val is_planar : Sparse_graph.Graph.t -> bool

(** [embed_block g] attempts a planar embedding of a {e biconnected} [g],
    returning the face boundaries (each a closed vertex cycle) on success.
    [None] means non-planar.
    @raise Invalid_argument if [g] is not biconnected. *)
val embed_block : Sparse_graph.Graph.t -> int list list option

(** [is_outerplanar g]: planar with all vertices on one face; tested by the
    apex trick (add a universal vertex and test planarity). *)
val is_outerplanar : Sparse_graph.Graph.t -> bool
