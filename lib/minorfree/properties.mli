(** Minor-closed graph properties, packaged for the property-testing
    application (Section 3.4).

    Every property here is minor-closed and closed under taking disjoint
    union, the two hypotheses of Theorem 1.4. [forbidden_clique] is the
    paper's parameter [s]: the smallest [s] with [K_s] not in [P]; the
    framework then treats the network as (assumed) [K_s]-minor-free. *)

type t = {
  name : string;
  holds : Sparse_graph.Graph.t -> bool;
  forbidden_clique : int;  (** smallest s with K_s not in P *)
}

(** Acyclic graphs; s = 3. *)
val forest : t

(** Disjoint unions of paths (acyclic, max degree <= 2); s = 3. *)
val linear_forest : t

(** Treewidth at most 2 (series-parallel); s = 4. *)
val series_parallel : t

(** Outerplanar graphs; s = 4. *)
val outerplanar : t

(** Planar graphs; s = 5. *)
val planar : t

(** All packaged properties. *)
val all : t list

(** [smallest_forbidden_clique p] recomputes s by testing [p.holds] on
    cliques K_1, K_2, ... (bounded at 8) — used in tests to validate the
    recorded [forbidden_clique]. *)
val smallest_forbidden_clique : t -> int option

(** [far_from ~epsilon g p] is a {e one-sided} farness certificate used by
    the experiments: it holds when every graph obtained from [g] by
    removing/adding at most [epsilon * m] edges still violates [p], as
    witnessed by [ceil(epsilon * m) + 1] edge-disjoint violations. Only a
    sufficient condition is checked: [true] means [g] is epsilon-far; the
    check is exact for [forest] (counts independent cycles) and
    conservative otherwise (returns [false] when unsure). *)
val far_from : epsilon:float -> Sparse_graph.Graph.t -> t -> bool
