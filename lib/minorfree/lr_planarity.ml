open Sparse_graph

(* Directed edges are (tail, head) pairs keyed as tail * n + head. The
   algorithm follows Brandes' presentation (and the NetworkX LRPlanarity
   reference); only the testing machinery is kept -- no embedding sides. *)

exception Nonplanar

type interval = {
  mutable low : int;   (* encoded edge, or -1 *)
  mutable high : int;
}

type cpair = {
  mutable li : interval;
  mutable ri : interval;
}

let is_planar g =
  let n = Graph.n g in
  let m = Graph.m g in
  if m = 0 || n < 5 then true
  else if m > (3 * n) - 6 then false
  else begin
    let encode u v = (u * n) + v in
    let head e = e mod n in
    let reversed e = encode (e mod n) (e / n) in
    let height = Array.make n (-1) in
    let parent_edge = Array.make n (-1) in
    (* per directed edge attributes *)
    let lowpt = Hashtbl.create (4 * m) in
    let lowpt2 = Hashtbl.create (4 * m) in
    let nesting = Hashtbl.create (4 * m) in
    let ref_ = Hashtbl.create (4 * m) in
    let lowpt_edge = Hashtbl.create (4 * m) in
    let oriented e = Hashtbl.mem lowpt e in
    let get tbl e = Hashtbl.find tbl e in
    let set tbl e x = Hashtbl.replace tbl e x in

    (* ---------------- phase 1: orientation ---------------- *)
    let rec dfs1 v =
      let e = parent_edge.(v) in
      Graph.iter_neighbors g v (fun w ->
          let vw = encode v w in
          if (not (oriented vw)) && not (oriented (reversed vw)) then begin
            set lowpt vw height.(v);
            set lowpt2 vw height.(v);
            if height.(w) < 0 then begin
              (* tree edge *)
              parent_edge.(w) <- vw;
              height.(w) <- height.(v) + 1;
              dfs1 w
            end
            else set lowpt vw height.(w);
            (* nesting depth *)
            let nd = 2 * get lowpt vw in
            let nd = if get lowpt2 vw < height.(v) then nd + 1 else nd in
            set nesting vw nd;
            (* propagate low points to the parent edge *)
            if e >= 0 then begin
              if get lowpt vw < get lowpt e then begin
                set lowpt2 e (min (get lowpt e) (get lowpt2 vw));
                set lowpt e (get lowpt vw)
              end
              else if get lowpt vw > get lowpt e then
                set lowpt2 e (min (get lowpt2 e) (get lowpt vw))
              else set lowpt2 e (min (get lowpt2 e) (get lowpt2 vw))
            end
          end)
    in
    let roots = ref [] in
    for v = 0 to n - 1 do
      if height.(v) < 0 then begin
        height.(v) <- 0;
        roots := v :: !roots;
        dfs1 v
      end
    done;

    (* outgoing oriented edges per vertex, by nesting depth *)
    let ordered = Array.make n [||] in
    for v = 0 to n - 1 do
      let out =
        Graph.fold_neighbors g v
          (fun acc w ->
            let vw = encode v w in
            if oriented vw then vw :: acc else acc)
          []
      in
      let arr = Array.of_list out in
      Array.sort (fun a b -> compare (get nesting a) (get nesting b)) arr;
      ordered.(v) <- arr
    done;

    (* ---------------- phase 2: testing ---------------- *)
    let stack : cpair list ref = ref [] in
    (* stack_bottom.(edge) = physical top of stack when the edge started *)
    let stack_bottom = Hashtbl.create (4 * m) in
    let top () = match !stack with [] -> None | p :: _ -> Some p in
    let pop () =
      match !stack with
      | [] -> raise Nonplanar
      | p :: rest ->
          stack := rest;
          p
    in
    let push p = stack := p :: !stack in
    let empty_iv () = { low = -1; high = -1 } in
    let iv_empty i = i.low < 0 && i.high < 0 in
    let swap p =
      let t = p.li in
      p.li <- p.ri;
      p.ri <- t
    in
    let conflicting i b =
      (not (iv_empty i)) && i.high >= 0 && get lowpt i.high > get lowpt b
    in
    let lowest p =
      match (iv_empty p.li, iv_empty p.ri) with
      | true, true -> max_int
      | true, false -> get lowpt p.ri.low
      | false, true -> get lowpt p.li.low
      | false, false -> min (get lowpt p.li.low) (get lowpt p.ri.low)
    in
    let same_top expected =
      match (top (), expected) with
      | None, None -> true
      | Some a, Some b -> a == b
      | _ -> false
    in
    let add_constraints ei e =
      let p = { li = empty_iv (); ri = empty_iv () } in
      (* merge return edges of ei into p.ri *)
      let continue = ref true in
      while !continue do
        let q = pop () in
        if not (iv_empty q.li) then swap q;
        if not (iv_empty q.li) then raise Nonplanar;
        if q.ri.low >= 0 && get lowpt q.ri.low > get lowpt e then begin
          (* merge intervals *)
          if iv_empty p.ri then p.ri.high <- q.ri.high
          else Hashtbl.replace ref_ p.ri.low q.ri.high;
          p.ri.low <- q.ri.low
        end
        else if q.ri.low >= 0 then
          (* align *)
          Hashtbl.replace ref_ q.ri.low (get lowpt_edge e);
        if same_top (Hashtbl.find stack_bottom ei) then continue := false
      done;
      (* merge conflicting return edges of earlier siblings into p.li *)
      let keep_going () =
        match top () with
        | None -> false
        | Some q -> conflicting q.li ei || conflicting q.ri ei
      in
      while keep_going () do
        let q = pop () in
        if conflicting q.ri ei then swap q;
        if conflicting q.ri ei then raise Nonplanar;
        (* merge interval below lowpt ei into p.ri *)
        if p.ri.low >= 0 then Hashtbl.replace ref_ p.ri.low q.ri.high;
        if q.ri.low >= 0 then p.ri.low <- q.ri.low;
        if iv_empty p.li then p.li.high <- q.li.high
        else Hashtbl.replace ref_ p.li.low q.li.high;
        p.li.low <- q.li.low
      done;
      if not (iv_empty p.li && iv_empty p.ri) then push p
    in
    let follow_ref e =
      match Hashtbl.find_opt ref_ e with Some x -> x | None -> -1
    in
    let trim_back_edges u =
      (* drop entire conflict pairs whose lowest return is at u *)
      let continue = ref true in
      while !continue do
        match top () with
        | Some p when lowest p = height.(u) -> ignore (pop ())
        | _ -> continue := false
      done;
      (* trim one more conflict pair *)
      match top () with
      | None -> ()
      | Some _ ->
          let p = pop () in
          while p.li.high >= 0 && head p.li.high = u do
            p.li.high <- follow_ref p.li.high
          done;
          if p.li.high < 0 && p.li.low >= 0 then begin
            Hashtbl.replace ref_ p.li.low p.ri.low;
            p.li.low <- -1
          end;
          while p.ri.high >= 0 && head p.ri.high = u do
            p.ri.high <- follow_ref p.ri.high
          done;
          if p.ri.high < 0 && p.ri.low >= 0 then begin
            Hashtbl.replace ref_ p.ri.low p.li.low;
            p.ri.low <- -1
          end;
          push p
    in
    let rec dfs2 v =
      let e = parent_edge.(v) in
      let outgoing = ordered.(v) in
      Array.iteri
        (fun idx ei ->
          let w = head ei in
          Hashtbl.replace stack_bottom ei (top ());
          if ei = parent_edge.(w) then dfs2 w
          else begin
            (* back edge *)
            set lowpt_edge ei ei;
            push { li = empty_iv (); ri = { low = ei; high = ei } }
          end;
          if get lowpt ei < height.(v) then begin
            (* ei has a return edge *)
            if idx = 0 then set lowpt_edge e (get lowpt_edge ei)
            else add_constraints ei e
          end)
        outgoing;
      if e >= 0 then trim_back_edges (e / n)
    in
    match List.iter (fun r -> dfs2 r) !roots with
    | () -> true
    | exception Nonplanar -> false
  end
