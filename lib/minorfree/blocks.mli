(** Biconnected components (blocks) via an iterative Hopcroft–Tarjan DFS.

    A block is a maximal subgraph without a cut vertex; bridges form
    two-vertex blocks. Planarity decomposes over blocks, which is how
    {!Planarity} uses this module. *)

(** [blocks g] returns the blocks, each as a list of edge ids. Every edge
    appears in exactly one block. *)
val blocks : Sparse_graph.Graph.t -> int list list

(** [cut_vertices g] lists the articulation points. *)
val cut_vertices : Sparse_graph.Graph.t -> int list

(** [is_biconnected g] holds when [g] is connected, has at least one edge,
    and has no cut vertex. *)
val is_biconnected : Sparse_graph.Graph.t -> bool
