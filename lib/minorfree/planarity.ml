open Sparse_graph

(* ------------------------------------------------------------------ *)
(* Demoucron's algorithm on one biconnected block                      *)
(* ------------------------------------------------------------------ *)

exception Non_planar

(* find any cycle in a biconnected graph with >= 3 vertices: walk the DFS
   tree until a back edge closes a cycle *)
let find_cycle g =
  let n = Graph.n g in
  let parent = Array.make n (-1) in
  let disc = Array.make n (-1) in
  let time = ref 0 in
  let cycle = ref [] in
  let rec dfs v =
    disc.(v) <- !time;
    incr time;
    Graph.iter_neighbors g v (fun w ->
        if !cycle = [] then begin
          if disc.(w) < 0 then begin
            parent.(w) <- v;
            dfs w
          end
          else if w <> parent.(v) && disc.(w) < disc.(v) then begin
            (* back edge v -> w: cycle w .. v along tree path *)
            let rec climb u acc = if u = w then u :: acc else climb parent.(u) (u :: acc) in
            cycle := climb v []
          end
        end)
  in
  let v0 = ref 0 in
  while Graph.degree g !v0 = 0 do incr v0 done;
  dfs !v0;
  !cycle

(* faces are stored as closed boundary cycles (vertex lists) *)

let rotate_to x cycle =
  let rec go pre = function
    | [] -> invalid_arg "rotate_to: vertex not on face"
    | y :: rest when y = x -> (y :: rest) @ List.rev pre
    | y :: rest -> go (y :: pre) rest
  in
  go [] cycle

(* split face [face] along [path] = a :: interior @ [b]; a and b must lie on
   the face boundary. Returns the two new faces. *)
let split_face face path =
  match path with
  | a :: _ ->
      let b = List.nth path (List.length path - 1) in
      let interior = List.filteri (fun i _ -> i > 0 && i < List.length path - 1) path in
      let rotated = rotate_to a face in
      let rec split_at pre = function
        | [] -> invalid_arg "split_face: second endpoint not on face"
        | y :: rest when y = b -> (List.rev (y :: pre), y :: rest)
        | y :: rest -> split_at (y :: pre) rest
      in
      (match rotated with
      | [] -> invalid_arg "split_face: empty face"
      | a0 :: rest ->
          let seg1, seg2_tail = split_at [ a0 ] rest in
          (* seg1 = a .. b ; seg2 = b .. (end) then wraps to a *)
          let f1 = seg1 @ List.rev interior in
          let f2 = seg2_tail @ [ a ] @ interior in
          (f1, f2))
  | [] -> invalid_arg "split_face: empty path"

type fragment = {
  attachments : int list;      (* embedded vertices touching the fragment *)
  path : int list;             (* a path between two attachments, interior
                                  vertices not yet embedded *)
  path_edges : int list;       (* edge ids along the path *)
}

(* compute all fragments of g relative to the embedded subgraph *)
let fragments g embedded_v embedded_e =
  let n = Graph.n g in
  let frags = ref [] in
  (* type A: single non-embedded edge between embedded vertices *)
  Graph.iter_edges g (fun e u v ->
      if (not embedded_e.(e)) && embedded_v.(u) && embedded_v.(v) then
        frags :=
          { attachments = [ u; v ]; path = [ u; v ]; path_edges = [ e ] }
          :: !frags);
  (* type B: connected components of non-embedded vertices *)
  let comp = Array.make n (-1) in
  let next = ref 0 in
  for v = 0 to n - 1 do
    if (not embedded_v.(v)) && comp.(v) < 0 && Graph.degree g v > 0 then begin
      let c = !next in
      incr next;
      let queue = Queue.create () in
      comp.(v) <- c;
      Queue.add v queue;
      let members = ref [ v ] in
      while not (Queue.is_empty queue) do
        let u = Queue.pop queue in
        Graph.iter_neighbors g u (fun w ->
            if (not embedded_v.(w)) && comp.(w) < 0 then begin
              comp.(w) <- c;
              members := w :: !members;
              Queue.add w queue
            end)
      done;
      (* attachments: embedded neighbors of the component *)
      let attach = Hashtbl.create 8 in
      List.iter
        (fun u ->
          Graph.iter_neighbors g u (fun w ->
              if embedded_v.(w) then Hashtbl.replace attach w ()))
        !members;
      let attachments =
        Hashtbl.fold (fun k () acc -> k :: acc) attach []
        |> List.sort compare
      in
      (* path between two attachments through the component: BFS from an
         attachment a entering only component vertices, stopping at the
         first embedded vertex b <> a *)
      match attachments with
      | [] | [ _ ] ->
          (* cannot happen inside a biconnected block *)
          raise Non_planar
      | a :: _ ->
          let prev = Array.make n (-2) in
          let prev_edge = Array.make n (-1) in
          let queue = Queue.create () in
          prev.(a) <- -1;
          Queue.add a queue;
          let target = ref (-1) in
          while !target < 0 && not (Queue.is_empty queue) do
            let u = Queue.pop queue in
            Graph.iter_incident g u (fun w e ->
                if !target < 0 && prev.(w) = -2 then begin
                  if (not embedded_v.(w)) && comp.(w) = c then begin
                    prev.(w) <- u;
                    prev_edge.(w) <- e;
                    Queue.add w queue
                  end
                  else if embedded_v.(w) && w <> a && u <> a then begin
                    (* path must pass through the component: require the
                       hop before w to be a component vertex *)
                    prev.(w) <- u;
                    prev_edge.(w) <- e;
                    target := w
                  end
                end)
          done;
          if !target < 0 then raise Non_planar;
          let rec build u acc eacc =
            if u = a then (a :: acc, eacc)
            else build prev.(u) (u :: acc) (prev_edge.(u) :: eacc)
          in
          let path, path_edges = build !target [] [] in
          frags := { attachments; path; path_edges } :: !frags
    end
  done;
  !frags

(* membership tables for each face, rebuilt once per embedding step *)
let face_tables faces =
  List.map
    (fun face ->
      let t = Hashtbl.create (List.length face) in
      List.iter (fun v -> Hashtbl.replace t v ()) face;
      (face, t))
    faces

let face_hosts table frag =
  List.for_all (fun a -> Hashtbl.mem table a) frag.attachments

let embed_block_exn g =
  let n = Graph.n g in
  let m = Graph.m g in
  if n >= 3 && m > (3 * n) - 6 then raise Non_planar;
  if m = 1 then
    (* a bridge block: trivial embedding with one (degenerate) face *)
    match Graph.edges g with
    | [| (u, v) |] -> [ [ u; v ] ]
    | _ -> assert false (* lint: allow S001 guarded by m = 1 above *)
  else begin
    let cycle = find_cycle g in
    if List.length cycle < 3 then raise Non_planar;
    let embedded_v = Array.make n false in
    let embedded_e = Array.make m false in
    List.iter (fun v -> embedded_v.(v) <- true) cycle;
    let mark_path_edges path =
      let rec go = function
        | u :: (v :: _ as rest) ->
            embedded_e.(Graph.find_edge g u v) <- true;
            go rest
        | _ -> ()
      in
      go path
    in
    mark_path_edges (cycle @ [ List.hd cycle ]);
    let faces = ref [ cycle; List.rev cycle ] in
    let remaining = ref (m - List.length cycle) in
    while !remaining > 0 do
      let frags = fragments g embedded_v embedded_e in
      if frags = [] then
        (* no fragment but edges remain: impossible in a connected block *)
        raise Non_planar;
      (* admissible faces per fragment *)
      let indexed_faces =
        List.mapi (fun idx (face, table) -> (idx, face, table))
          (face_tables !faces)
      in
      (* for each fragment: its first admissible face and whether a second
         exists; a fragment with none certifies non-planarity, a fragment
         with exactly one must be embedded there (Demoucron's rule) *)
      let choose () =
        let fallback = ref None in
        let unique = ref None in
        List.iter
          (fun fr ->
            if !unique = None then begin
              let hosts = ref [] in
              (try
                 List.iter
                   (fun (idx, face, table) ->
                     if face_hosts table fr then begin
                       hosts := (idx, face) :: !hosts;
                       if List.length !hosts >= 2 then raise Exit
                     end)
                   indexed_faces
               with Exit -> ());
              match !hosts with
              | [] -> raise Non_planar
              | [ h ] -> unique := Some (fr, h)
              | h :: _ -> if !fallback = None then fallback := Some (fr, h)
            end)
          frags;
        match (!unique, !fallback) with
        | Some x, _ -> x
        | None, Some x -> x
        | None, None -> raise Non_planar
      in
      let fr, (face_idx, face) = choose () in
      let f1, f2 = split_face face fr.path in
      faces :=
        f1 :: f2 :: List.filteri (fun i _ -> i <> face_idx) !faces;
      List.iter (fun v -> embedded_v.(v) <- true) fr.path;
      List.iter (fun e -> embedded_e.(e) <- true) fr.path_edges;
      remaining := !remaining - List.length fr.path_edges
    done;
    !faces
  end

let embed_block g =
  if not (Blocks.is_biconnected g) then
    invalid_arg "Planarity.embed_block: graph is not biconnected";
  match embed_block_exn g with
  | faces -> Some faces
  | exception Non_planar -> None

let is_planar g =
  let n = Graph.n g in
  let m = Graph.m g in
  if m = 0 then true
  else if n >= 3 && m > (3 * n) - 6 then false
  else begin
    let block_list = Blocks.blocks g in
    List.for_all
      (fun edge_ids ->
        if List.length edge_ids <= 2 then true
        else begin
          let vertices =
            List.concat_map
              (fun e ->
                let u, v = Graph.endpoints g e in
                [ u; v ])
              edge_ids
          in
          let sub_edges =
            List.map
              (fun e ->
                let u, v = Graph.endpoints g e in
                (u, v))
              edge_ids
          in
          (* compact the block into its own graph *)
          let uniq = List.sort_uniq compare vertices in
          let index = Hashtbl.create 16 in
          List.iteri (fun i v -> Hashtbl.add index v i) uniq;
          let block =
            Graph.of_edges (List.length uniq)
              (List.map
                 (fun (u, v) ->
                   (Hashtbl.find index u, Hashtbl.find index v))
                 sub_edges)
          in
          match embed_block_exn block with
          | _ -> true
          | exception Non_planar -> false
        end)
      block_list
  end

let is_outerplanar g =
  let n = Graph.n g in
  if n = 0 then true
  else begin
    let apex = n in
    let edges =
      Graph.fold_edges g (fun acc _ u v -> (u, v) :: acc)
        (List.init n (fun v -> (v, apex)))
    in
    is_planar (Graph.of_edges (n + 1) edges)
  end
