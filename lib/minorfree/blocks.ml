open Sparse_graph

(* Iterative DFS computing disc/low values, an edge stack for blocks, and
   articulation points. *)

type frame = {
  vertex : int;
  parent_edge : int;  (* edge id used to reach vertex, -1 at roots *)
  mutable cursor : int;  (* next incidence index to explore *)
  mutable children : int;
  mutable low : int;
}

let run g =
  let n = Graph.n g in
  let disc = Array.make n (-1) in
  let time = ref 0 in
  let edge_stack = ref [] in
  let blocks = ref [] in
  let is_cut = Array.make n false in
  (* incidence arrays for cursor-based iteration *)
  let inc =
    Array.init n (fun v ->
        let acc = ref [] in
        Graph.iter_incident g v (fun w e -> acc := (w, e) :: !acc);
        Array.of_list (List.rev !acc))
  in
  let pop_block until_edge =
    let rec go acc =
      match !edge_stack with
      | [] -> acc
      | e :: rest ->
          edge_stack := rest;
          if e = until_edge then e :: acc else go (e :: acc)
    in
    let b = go [] in
    if b <> [] then blocks := b :: !blocks
  in
  for root = 0 to n - 1 do
    if disc.(root) < 0 then begin
      disc.(root) <- !time;
      incr time;
      let stack =
        ref
          [ { vertex = root; parent_edge = -1; cursor = 0; children = 0;
              low = disc.(root) } ]
      in
      let continue = ref true in
      while !continue do
        match !stack with
        | [] -> continue := false
        | frame :: rest ->
            let v = frame.vertex in
            if frame.cursor < Array.length inc.(v) then begin
              let w, e = inc.(v).(frame.cursor) in
              frame.cursor <- frame.cursor + 1;
              if e <> frame.parent_edge then begin
                if disc.(w) < 0 then begin
                  (* tree edge *)
                  edge_stack := e :: !edge_stack;
                  disc.(w) <- !time;
                  incr time;
                  frame.children <- frame.children + 1;
                  stack :=
                    { vertex = w; parent_edge = e; cursor = 0; children = 0;
                      low = disc.(w) }
                    :: !stack
                end
                else if disc.(w) < disc.(v) then begin
                  (* back edge to an ancestor *)
                  edge_stack := e :: !edge_stack;
                  if disc.(w) < frame.low then frame.low <- disc.(w)
                end
              end
            end
            else begin
              (* finished v: propagate low to parent, close blocks *)
              stack := rest;
              match rest with
              | [] -> ()
              | parent :: _ ->
                  let u = parent.vertex in
                  if frame.low < parent.low then parent.low <- frame.low;
                  if frame.low >= disc.(u) then begin
                    (* u separates the finished subtree: close its block *)
                    pop_block frame.parent_edge;
                    let u_is_root = parent.parent_edge < 0 in
                    if (not u_is_root) || parent.children > 1 then
                      is_cut.(u) <- true
                  end
            end
      done
    end
  done;
  (!blocks, is_cut)

let blocks g = fst (run g)

let cut_vertices g =
  let _, is_cut = run g in
  let out = ref [] in
  for v = Graph.n g - 1 downto 0 do
    if is_cut.(v) then out := v :: !out
  done;
  !out

let is_biconnected g =
  Graph.n g >= 2 && Graph.m g >= 1
  && Traversal.is_connected g
  && cut_vertices g = []
