(** The left-right planarity test (de Fraysseix–Rosenstiehl criterion,
    Brandes' formulation) — a second, independent planarity decision
    procedure in near-linear time.

    Phase 1 orients the graph by DFS, computing for every directed edge its
    low-point, second low-point and nesting depth. Phase 2 re-traverses in
    nesting order maintaining a stack of conflict pairs (left/right
    intervals of back edges); the graph is planar iff no two back edges are
    forced onto the same side with interleaving return heights.

    The test suite cross-validates this implementation against the
    independent Demoucron embedder ({!Planarity}) on thousands of random
    graphs; {!Planarity.is_planar} remains the default in the framework
    (it also produces face structures), with this module as the fast path
    for pure yes/no queries. *)

(** [is_planar g] decides planarity. *)
val is_planar : Sparse_graph.Graph.t -> bool
