open Sparse_graph

type result = {
  mate : int array;
  size : int;
  weight : int;
  pipeline : Pipeline.t option;
}

let matching_weight g w mate =
  let total = ref 0 in
  Array.iteri
    (fun v m ->
      if m > v then total := !total + Weights.get w (Graph.find_edge g v m))
    mate;
  !total

let mcm_planar ?(mode = Pipeline.Simulated) ?(c = 0.25) g ~epsilon ~seed =
  let reduced = Matching.Preprocess.eliminate_fixpoint g in
  let gbar = reduced.graph in
  let eps' = min 0.999 (max 1e-6 (c *. epsilon)) in
  let pipeline = Pipeline.prepare ~mode gbar ~epsilon:eps' ~seed in
  let n = Graph.n g in
  let mate = Array.make n (-1) in
  Array.iter
    (fun (cl : Pipeline.cluster) ->
      let local = Matching.Blossom.max_cardinality_matching cl.sub in
      Array.iteri
        (fun v m ->
          if m > v then begin
            (* translate: cluster -> reduced graph -> original graph *)
            let rv = cl.mapping.to_orig.(v) and rm = cl.mapping.to_orig.(m) in
            let ov = reduced.mapping.to_orig.(rv)
            and om = reduced.mapping.to_orig.(rm) in
            mate.(ov) <- om;
            mate.(om) <- ov
          end)
        local)
    pipeline.clusters;
  let size =
    Array.fold_left (fun acc m -> if m >= 0 then acc + 1 else acc) 0 mate / 2
  in
  { mate; size; weight = size; pipeline = Some pipeline }

let mwm ?(mode = Pipeline.Simulated) ?(exact_limit = 18) g w ~epsilon ~seed =
  let n = Graph.n g in
  let mate = Array.make n (-1) in
  let params = Matching.Scaling.of_epsilon epsilon in
  let thresholds = Matching.Scaling.scales ~params w in
  let eps' = min 0.999 (max 1e-6 (epsilon /. 2.)) in
  let last_pipeline = ref None in
  List.iteri
    (fun scale_idx threshold ->
      (* working subgraph: eligible heavy edges between unmatched vertices *)
      let eligible =
        Graph.fold_edges g
          (fun acc e u v ->
            if Weights.get w e >= threshold && mate.(u) = -1 && mate.(v) = -1
            then e :: acc
            else acc)
          []
      in
      if eligible <> [] then begin
        let sub_all, map_all = Graph_ops.subgraph_of_edges g (List.rev eligible) in
        (* drop isolated vertices to keep the pipeline small *)
        let live =
          List.filter
            (fun v -> Graph.degree sub_all v > 0)
            (List.init n Fun.id)
        in
        let sub, map_live = Graph_ops.induced_subgraph sub_all live in
        if Graph.m sub > 0 then begin
          let sub_w =
            Weights.of_array sub
              (Array.map
                 (fun e_sub_all -> Weights.get w map_all.edge_to_orig.(e_sub_all))
                 map_live.edge_to_orig)
          in
          let pipeline =
            Pipeline.prepare ~mode sub ~epsilon:eps'
              ~seed:(seed + (997 * scale_idx))
          in
          last_pipeline := Some pipeline;
          Array.iter
            (fun (cl : Pipeline.cluster) ->
              if Graph.m cl.sub > 0 then begin
                let cl_w = Weights.restrict sub_w cl.mapping in
                let local =
                  if Graph.n cl.sub <= exact_limit then begin
                    let _, picked =
                      Matching.Exact_small.max_weight_matching_edges cl.sub cl_w
                    in
                    let m = Array.make (Graph.n cl.sub) (-1) in
                    List.iter
                      (fun e ->
                        let u, v = Graph.endpoints cl.sub e in
                        m.(u) <- v;
                        m.(v) <- u)
                      picked;
                    m
                  end
                  else
                    Matching.Approx.local_search cl.sub cl_w ~len:params.search_len
                      ~passes:params.passes ()
                in
                Array.iteri
                  (fun v m ->
                    if m > v then begin
                      let ov =
                        map_live.to_orig.(cl.mapping.to_orig.(v))
                      and om =
                        map_live.to_orig.(cl.mapping.to_orig.(m))
                      in
                      if mate.(ov) = -1 && mate.(om) = -1 then begin
                        mate.(ov) <- om;
                        mate.(om) <- ov
                      end
                    end)
                  local
              end)
            pipeline.clusters
        end
      end)
    thresholds;
  (* final cleanup: bounded-length weight-improving augmentations on the
     whole graph (each vertex's O(1/eps)-neighborhood, as in the scaling
     algorithm's last pass) *)
  let mate =
    Matching.Approx.local_search g w ~init:mate ~len:params.search_len
      ~passes:params.passes ()
  in
  (* a graph that fits the leader's exact solver outright is one cluster:
     solve it exactly, as the model allows (unbounded local computation) *)
  let mate =
    if n <= exact_limit then begin
      let _, picked = Matching.Exact_small.max_weight_matching_edges g w in
      let exact = Array.make n (-1) in
      List.iter
        (fun e ->
          let u, v = Graph.endpoints g e in
          exact.(u) <- v;
          exact.(v) <- u)
        picked;
      if matching_weight g w exact >= matching_weight g w mate then exact
      else mate
    end
    else mate
  in
  let size =
    Array.fold_left (fun acc m -> if m >= 0 then acc + 1 else acc) 0 mate / 2
  in
  { mate; size; weight = matching_weight g w mate; pipeline = !last_pipeline }

let ratio result ~opt =
  if opt = 0 then 1. else float_of_int result.weight /. float_of_int opt
