open Sparse_graph

type result = {
  clustering : int array;
  score : int;
  pipeline : Pipeline.t;
}

let trivial_bound g = (Graph.m g + 1) / 2

let run ?(mode = Pipeline.Simulated) g ~labels ~epsilon ~seed =
  let eps' = min 0.999 (max 1e-6 (epsilon /. 2.)) in
  let pipeline = Pipeline.prepare ~mode g ~epsilon:eps' ~seed in
  let n = Graph.n g in
  let clustering = Array.make n (-1) in
  let offset = ref 0 in
  Array.iter
    (fun (cl : Pipeline.cluster) ->
      (* restrict the +/- labelling to the cluster's induced subgraph *)
      let sub_labels =
        Array.map (fun orig_e -> labels.(orig_e)) cl.mapping.edge_to_orig
      in
      let local = Optimize.Correlation.solve cl.sub sub_labels ~seed in
      (* renumber the local cluster ids to 0 .. used-1 before offsetting so
         ids from different framework clusters never collide *)
      let remap = Hashtbl.create 8 in
      let used = ref 0 in
      let normalized =
        Array.map
          (fun c ->
            match Hashtbl.find_opt remap c with
            | Some x -> x
            | None ->
                let x = !used in
                incr used;
                Hashtbl.add remap c x;
                x)
          local
      in
      Array.iteri
        (fun v c -> clustering.(cl.mapping.to_orig.(v)) <- !offset + c)
        normalized;
      offset := !offset + !used)
    pipeline.clusters;
  let score = Optimize.Correlation.score g labels clustering in
  { clustering; score; pipeline }

let ratio result ~opt =
  if opt = 0 then 1. else float_of_int result.score /. float_of_int opt
