(** Theorem 1.4: distributed property testing of minor-closed,
    disjoint-union-closed properties (Section 3.4).

    The tester runs the framework assuming the network is K_s-minor-free
    (s = the property's smallest forbidden clique). Each leader checks its
    gathered cluster topology against the property; a cluster also rejects
    when the Lemma 2.3 high-degree condition
    deg_Gi(leader) at least c * phi^2 * |E_i| fails — the signature of a
    non-H-minor-free input. One-sided: a graph with the property is always
    accepted; an epsilon-far graph has a rejecting cluster because removing
    the <= epsilon|E| inter-cluster edges leaves a disjoint union of
    clusters, and the property is closed under disjoint union. *)

type verdict = {
  accepted : bool;               (** all vertices output Accept *)
  rejecting_clusters : int list; (** leaders of rejecting clusters *)
  degree_condition_failures : int;
      (** clusters rejected by the Lemma 2.3 check *)
  diameter_marks : int option;
      (** Simulated mode only: vertices marked [*] by the Section 2.3
          distributed diameter check (0 on a successful clustering) *)
  pipeline : Pipeline.t;
}

(** [run ?mode ?c_deg g property ~epsilon ~seed]. [c_deg] (default 0.5) is
    the explicit constant in the Lemma 2.3 degree condition. *)
val run :
  ?mode:Pipeline.mode -> ?c_deg:float -> Sparse_graph.Graph.t ->
  Minorfree.Properties.t -> epsilon:float -> seed:int -> verdict
