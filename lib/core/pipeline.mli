(** The framework of Theorem 2.6: expander-decompose, elect a maximum-degree
    leader per cluster, gather each cluster's topology at its leader, let
    the leader solve locally, and broadcast results back.

    Two execution modes:
    - [Simulated]: leader election, low-out-degree orientation, random-walk
      routing (Lemma 2.4) and broadcast all actually run on the CONGEST
      simulator, with real round/bandwidth accounting. The walk budget
      doubles until gathering completes.
    - [Charged]: the communication phases are skipped (results produced
      centrally, bit-identical to a successful simulated run) and the
      construction cost is charged by the Theorem 2.1 formula. Use for
      large benchmark instances where simulating every token is too slow.

    The expander decomposition itself is always computed centrally (see
    DESIGN.md, substitution 1) and charged [ceil(eps^-2 * log2(n)^3)]
    rounds, the epsilon^-O(1) log^O(1) n shape of Theorem 2.1 with
    exponents (2, 3). *)

type mode = Simulated | Charged

(** Which expander-decomposition engine drives the framework: recursive
    spectral bipartitioning (default) or the flow-based cut-matching game
    ([Flow.Decomp_engine]). Both produce the same result record with the
    same thresholds, are deterministic for every pool size, and are
    interchangeable downstream; spectral doubles as the cross-check oracle
    on small graphs. *)
type engine = Spectral_engine | Cut_matching_engine

(** Parse ["spectral"] / ["cutmatching"] (also ["cut-matching"], ["cm"]). *)
val engine_of_string : string -> engine option

val engine_name : engine -> string

type cluster = {
  leader : int;                     (** v_i*, in original vertex ids *)
  members : int list;               (** V_i, sorted *)
  sub : Sparse_graph.Graph.t;       (** G[V_i] *)
  mapping : Sparse_graph.Graph_ops.mapping;  (** sub <-> original *)
}

type report = {
  epsilon : float;
  phi : float;                      (** certified conductance target *)
  k : int;                          (** number of clusters *)
  inter_edges : int;
  inter_fraction : float;
  charged_construction_rounds : int;
  diameter_bound : int;             (** bound b used for flood phases *)
  election_stats : Congest.Network.stats option;
  orientation_stats : Congest.Network.stats option;
  routing_stats : Congest.Network.stats option;
  broadcast_stats : Congest.Network.stats option;
  simulated_rounds : int;           (** total measured rounds of the
                                        simulated phases (0 in Charged) *)
}

type t = {
  graph : Sparse_graph.Graph.t;
  decomposition : Spectral.Expander_decomposition.t;
  view : Distr.Cluster_view.t;
  leader_of : int array;
  clusters : cluster array;
  report : report;
}

(** [prepare ?mode ?engine ?pool g ~epsilon ~seed] runs decomposition,
    election, and gathering. In [Simulated] mode (default) the phases run
    on the CONGEST simulator; gathering retries with doubled walk budgets
    until complete. [engine] (default [Spectral_engine]) selects the
    decomposition engine. The decomposition recursion, the per-cluster
    subgraph construction, and the diameter bound fan out on [pool]
    (default sequential); the result is identical for every pool size.
    @raise Failure if simulated gathering cannot complete within the
    largest budget (does not occur on certified decompositions). *)
val prepare :
  ?mode:mode -> ?engine:engine -> ?pool:Parallel.Pool.t ->
  Sparse_graph.Graph.t -> epsilon:float -> seed:int -> t

(** [solve_locally t f] runs [f] on every cluster (the leader's local
    computation) and returns the per-cluster results. *)
val solve_locally : t -> (cluster -> 'a) -> 'a array

(** [routing_service ?reuse ?seed ?pool t] builds the expander-routing
    serving layer ({!Route.Service}) over the prepared decomposition: a
    witness hierarchy reusing the engines' retained cut-matching
    matchings ([reuse], default [true]), answering batched demand
    matrices as a planner or as a CONGEST workload. [pool] parallelizes
    leaf preprocessing and every serve, with byte-identical results at
    any worker count. *)
val routing_service :
  ?reuse:bool -> ?seed:int -> ?pool:Parallel.Pool.t -> t -> Route.Service.t

(** [broadcast_result t ~payload] simulates broadcasting one word from each
    leader over its cluster and returns the stats (Simulated mode); in
    Charged mode returns [None]. [payload] maps each leader to the value it
    announces. *)
val broadcast_result :
  t -> payload:(int -> int) -> Congest.Network.stats option

(** Theorem 2.1 construction-round charge: [ceil(eps^-2 * log2(max n 2)^3)]. *)
val construction_charge : n:int -> epsilon:float -> int

(** Theorem 2.2 deterministic construction charge:
    [ceil(eps^-2 * 2^sqrt(log2 n * log2 log2 n))] — the
    [eps^-O(1) 2^O(sqrt(log n log log n))] shape with exponents (2, 1).
    Reported for comparison in experiment E8; the decomposition itself is
    deterministic given the seed, so the same algorithm realizes both
    statements. *)
val construction_charge_deterministic : n:int -> epsilon:float -> int
