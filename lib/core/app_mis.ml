open Sparse_graph

type result = {
  independent_set : int list;
  size : int;
  conflicts_removed : int;
  pipeline : Pipeline.t;
}

let alpha_lower_bound g =
  let d = max 1. (Graph.edge_density g) in
  int_of_float (floor (float_of_int (Graph.n g) /. ((2. *. d) +. 1.)))

let run ?(mode = Pipeline.Simulated) ?(exact_limit = 120) g ~epsilon ~seed =
  let d = max 1. (Graph.edge_density g) in
  let eps' = epsilon /. ((2. *. d) +. 1.) in
  let eps' = min 0.999 (max 1e-6 eps') in
  let pipeline = Pipeline.prepare ~mode g ~epsilon:eps' ~seed in
  let per_cluster =
    Pipeline.solve_locally pipeline (fun c ->
        let local =
          if Graph.n c.sub <= exact_limit then Optimize.Mis.exact c.sub
          else Optimize.Mis.greedy c.sub
        in
        List.map (fun v -> c.mapping.to_orig.(v)) local)
  in
  let n = Graph.n g in
  let chosen = Array.make n false in
  Array.iter (List.iter (fun v -> chosen.(v) <- true)) per_cluster;
  (* resolve conflicts across inter-cluster edges: drop one endpoint (Z) *)
  let conflicts = ref 0 in
  List.iter
    (fun e ->
      let u, v = Graph.endpoints g e in
      if chosen.(u) && chosen.(v) then begin
        chosen.(u) <- false;
        incr conflicts
      end)
    pipeline.decomposition.inter_edges;
  let set = ref [] in
  for v = n - 1 downto 0 do
    if chosen.(v) then set := v :: !set
  done;
  {
    independent_set = !set;
    size = List.length !set;
    conflicts_removed = !conflicts;
    pipeline;
  }

let ratio result ~opt =
  if opt = 0 then 1. else float_of_int result.size /. float_of_int opt

type weighted_result = {
  w_independent_set : int list;
  total_weight : int;
  w_pipeline : Pipeline.t;
}

let run_weighted ?(mode = Pipeline.Simulated) ?(exact_limit = 100) g ~weights
    ~epsilon ~seed =
  let d = max 1. (Graph.edge_density g) in
  let eps' = min 0.999 (max 1e-6 (epsilon /. ((2. *. d) +. 1.))) in
  let pipeline = Pipeline.prepare ~mode g ~epsilon:eps' ~seed in
  let per_cluster =
    Pipeline.solve_locally pipeline (fun c ->
        let local_w =
          Array.map (fun orig -> weights.(orig)) c.mapping.to_orig
        in
        let local =
          if Graph.n c.sub <= exact_limit then
            Optimize.Mis.exact_weighted c.sub local_w
          else Optimize.Mis.greedy c.sub
        in
        List.map (fun v -> c.mapping.to_orig.(v)) local)
  in
  let n = Graph.n g in
  let chosen = Array.make n false in
  Array.iter (List.iter (fun v -> chosen.(v) <- true)) per_cluster;
  List.iter
    (fun e ->
      let u, v = Graph.endpoints g e in
      if chosen.(u) && chosen.(v) then begin
        (* drop the lighter endpoint (ties: the smaller id) *)
        let drop = if weights.(u) <= weights.(v) then u else v in
        chosen.(drop) <- false
      end)
    pipeline.decomposition.inter_edges;
  let set = ref [] in
  for v = n - 1 downto 0 do
    if chosen.(v) then set := v :: !set
  done;
  {
    w_independent_set = !set;
    total_weight = Optimize.Mis.weight_of weights !set;
    w_pipeline = pipeline;
  }
