(** Theorem 1.3: (1 - epsilon)-approximate agreement-maximization
    correlation clustering (Section 3.3).

    Decompose with [eps' = epsilon / 2], let each leader solve its cluster
    optimally (exact subset DP up to the size cap, heuristic above), and
    take the union of the per-cluster clusterings with disjoint cluster
    ids. Inter-cluster edges are implicitly "cut", which is where the
    epsilon/2 * |E| <= epsilon * gamma(G) slack goes (gamma >= |E|/2). *)

type result = {
  clustering : int array;
  score : int;
  pipeline : Pipeline.t;
}

val run :
  ?mode:Pipeline.mode -> Sparse_graph.Graph.t ->
  labels:bool array -> epsilon:float -> seed:int -> result

(** gamma(G) >= |E| / 2 (the trivial clustering bound, used by E4). *)
val trivial_bound : Sparse_graph.Graph.t -> int

(** Ratio against a reference optimum score. *)
val ratio : result -> opt:int -> float
