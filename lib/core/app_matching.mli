(** Theorems 3.2 and 1.1: approximate matching via the framework.

    {b MCM on planar graphs} (Section 3.2): eliminate 2-stars and
    3-double-stars so the optimum is Omega(n-bar) (Lemma 3.1), decompose
    the reduced graph with [eps' = c * epsilon], solve each cluster with
    the exact blossom algorithm, and take the union — clusters are
    vertex-disjoint, so no conflicts arise.

    {b MWM on H-minor-free graphs} (Theorem 1.1 shape): walk the weight
    scales from heavy to light (the Duan–Pettie skeleton); at each scale,
    decompose the subgraph of still-eligible edges and let each leader
    extend the global matching inside its cluster (exact subset DP when the
    cluster is small, bounded-length local search otherwise). *)

type result = {
  mate : int array;          (** on the original graph *)
  size : int;                (** matched edges *)
  weight : int;              (** total weight (1 per edge for MCM) *)
  pipeline : Pipeline.t option;  (** last pipeline run (MWM: the last scale) *)
}

(** [mcm_planar ?mode ?c g ~epsilon ~seed]. [c] is the Lemma 3.1 constant
    used as [eps' = c * epsilon] (default 0.25). *)
val mcm_planar :
  ?mode:Pipeline.mode -> ?c:float -> Sparse_graph.Graph.t -> epsilon:float ->
  seed:int -> result

(** [mwm ?mode ?exact_limit g w ~epsilon ~seed] (default exact_limit 18). *)
val mwm :
  ?mode:Pipeline.mode -> ?exact_limit:int -> Sparse_graph.Graph.t ->
  Sparse_graph.Weights.t -> epsilon:float -> seed:int -> result

(** Ratio against a reference optimum value. *)
val ratio : result -> opt:int -> float
