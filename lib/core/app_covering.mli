(** Covering problems through the framework — measured extensions.

    Minimum dominating set is the flagship problem of the LOCAL-model line
    of work on planar networks the paper discusses in Section 1.4; minimum
    vertex cover is its packing dual. Both decompose cleanly: the union of
    per-cluster optimal solutions is feasible (each cluster dominates /
    covers itself; inter-cluster edges additionally get one endpoint each
    for vertex cover), and exceeds the optimum by at most the boundary
    terms. Unlike the paper's maximization problems, OPT here can be o(n),
    so no (1 + epsilon) guarantee is claimed — experiment E13 reports
    measured ratios. *)

type result = {
  solution : int list;
  size : int;
  pipeline : Pipeline.t;
}

(** [dominating_set ?mode ?exact_limit g ~epsilon ~seed]: union of
    per-cluster minimum dominating sets (exact up to [exact_limit], default
    80; greedy above). Always returns a valid dominating set. *)
val dominating_set :
  ?mode:Pipeline.mode -> ?exact_limit:int -> Sparse_graph.Graph.t ->
  epsilon:float -> seed:int -> result

(** [vertex_cover ?mode ?exact_limit g ~epsilon ~seed]: union of
    per-cluster minimum vertex covers plus one endpoint of every
    inter-cluster edge. Always returns a valid cover. *)
val vertex_cover :
  ?mode:Pipeline.mode -> ?exact_limit:int -> Sparse_graph.Graph.t ->
  epsilon:float -> seed:int -> result
