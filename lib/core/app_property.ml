open Sparse_graph

type verdict = {
  accepted : bool;
  rejecting_clusters : int list;
  degree_condition_failures : int;
  diameter_marks : int option;
  pipeline : Pipeline.t;
}

let run ?(mode = Pipeline.Simulated) ?(c_deg = 0.5) g
    (property : Minorfree.Properties.t) ~epsilon ~seed =
  let eps' = min 0.999 (max 1e-6 epsilon) in
  let pipeline = Pipeline.prepare ~mode g ~epsilon:eps' ~seed in
  let phi = pipeline.decomposition.phi in
  let rejecting = ref [] in
  let degree_failures = ref 0 in
  Array.iter
    (fun (cl : Pipeline.cluster) ->
      let mi = Graph.m cl.sub in
      (* Lemma 2.3 condition: the leader's degree must be large relative to
         phi^2 |E_i|; a failure certifies a non-minor-free input. Only
         meaningful for clusters with edges. *)
      let leader_sub = cl.mapping.to_sub.(cl.leader) in
      let deg_ok =
        mi = 0
        || float_of_int (Graph.degree cl.sub leader_sub)
           >= c_deg *. phi *. phi *. float_of_int mi
      in
      if not deg_ok then begin
        incr degree_failures;
        rejecting := cl.leader :: !rejecting
      end
      else if not (property.holds cl.sub) then
        rejecting := cl.leader :: !rejecting)
    pipeline.clusters;
  (* Section 2.3 failure detection: in simulated mode, actually run the
     distributed diameter check against the clustering's diameter bound *)
  let diameter_marks =
    match mode with
    | Pipeline.Charged -> None
    | Pipeline.Simulated ->
        let r =
          Distr.Diameter_check.run pipeline.view
            ~b:(max 1 pipeline.report.diameter_bound)
        in
        Some
          (Array.fold_left (fun acc m -> if m then acc + 1 else acc) 0
             r.marked)
  in
  {
    accepted = !rejecting = [];
    rejecting_clusters = List.rev !rejecting;
    degree_condition_failures = !degree_failures;
    diameter_marks;
    pipeline;
  }
