(** Theorem 1.2: (1 - epsilon)-approximate maximum independent set on
    H-minor-free networks (Section 3.1).

    The framework decomposes with parameter [eps' = epsilon / (2d + 1)]
    (d = edge-density bound), each leader solves its cluster exactly (or
    greedily above the exact size cap), and endpoints of inter-cluster
    conflicts are dropped (the set Z of the paper). *)

type result = {
  independent_set : int list;
  size : int;
  conflicts_removed : int;   (** |Z| *)
  pipeline : Pipeline.t;
}

(** [run ?mode ?exact_limit g ~epsilon ~seed]. [exact_limit] (default 120)
    caps the cluster size for the exact branch-and-bound solver; larger
    clusters fall back on min-degree greedy (documented substitution 2 in
    DESIGN.md). *)
val run :
  ?mode:Pipeline.mode -> ?exact_limit:int -> Sparse_graph.Graph.t ->
  epsilon:float -> seed:int -> result

(** Lower bound on alpha(G) from the min-degree greedy argument:
    [n / (2d + 1)]. *)
val alpha_lower_bound : Sparse_graph.Graph.t -> int

(** Weighted MAXIS through the same framework (the extension the paper's
    Section 1.1 credits to [10, 66]): per-cluster exact weighted solves,
    conflicts across inter-cluster edges resolved by dropping the lighter
    endpoint. [weights.(v) > 0] required. Measured ratios in the test
    suite; no (1 - eps) guarantee is claimed for the weighted case. *)
type weighted_result = {
  w_independent_set : int list;
  total_weight : int;
  w_pipeline : Pipeline.t;
}

val run_weighted :
  ?mode:Pipeline.mode -> ?exact_limit:int -> Sparse_graph.Graph.t ->
  weights:int array -> epsilon:float -> seed:int -> weighted_result

(** The achieved approximation ratio against a reference optimum. *)
val ratio : result -> opt:int -> float
