open Sparse_graph

type result = {
  partition : Decomp.Partition.t;
  max_diameter : int;
  cut_fraction : float;
  pipeline : Pipeline.t;
}

let run ?(mode = Pipeline.Simulated) ?(levels = 2) g ~epsilon ~seed =
  let eps_half = min 0.999 (max 1e-6 (epsilon /. 2.)) in
  let pipeline = Pipeline.prepare ~mode g ~epsilon:eps_half ~seed in
  let n = Graph.n g in
  let labels = Array.make n (-1) in
  let offset = ref 0 in
  Array.iter
    (fun (cl : Pipeline.cluster) ->
      (* the leader refines its cluster with a sequential minor-free LDD;
         budget eps/2 of the cluster's own edges *)
      let local =
        if Graph.m cl.sub = 0 then
          Decomp.Partition.of_labels cl.sub
            (Array.make (Graph.n cl.sub) 0)
        else begin
          let kpr = Decomp.Kpr.ldd cl.sub ~epsilon:eps_half ~levels ~seed in
          if Decomp.Partition.cut_fraction cl.sub kpr <= eps_half +. 1e-9 then
            kpr
          else Decomp.Ldd.region_growing cl.sub ~epsilon:eps_half
        end
      in
      Array.iteri
        (fun v l -> labels.(cl.mapping.to_orig.(v)) <- !offset + l)
        local.labels;
      offset := !offset + local.k)
    pipeline.clusters;
  let partition = Decomp.Partition.of_labels g labels in
  {
    partition;
    max_diameter = Decomp.Partition.max_cluster_diameter g partition;
    cut_fraction = Decomp.Partition.cut_fraction g partition;
    pipeline;
  }
