open Sparse_graph

type result = {
  solution : int list;
  size : int;
  pipeline : Pipeline.t;
}

let collect n per_cluster (clusters : Pipeline.cluster array) =
  let chosen = Array.make n false in
  Array.iteri
    (fun i (cl : Pipeline.cluster) ->
      List.iter
        (fun v -> chosen.(cl.mapping.to_orig.(v)) <- true)
        per_cluster.(i))
    clusters;
  chosen

let finalize chosen =
  let out = ref [] in
  for v = Array.length chosen - 1 downto 0 do
    if chosen.(v) then out := v :: !out
  done;
  !out

let dominating_set ?(mode = Pipeline.Simulated) ?(exact_limit = 80) g ~epsilon
    ~seed =
  let eps' = min 0.999 (max 1e-6 epsilon) in
  let pipeline = Pipeline.prepare ~mode g ~epsilon:eps' ~seed in
  let per_cluster =
    Pipeline.solve_locally pipeline (fun c ->
        if Graph.n c.sub <= exact_limit then Optimize.Dominating.exact c.sub
        else Optimize.Dominating.greedy c.sub)
  in
  let chosen = collect (Graph.n g) per_cluster pipeline.clusters in
  let solution = finalize chosen in
  { solution; size = List.length solution; pipeline }

let vertex_cover ?(mode = Pipeline.Simulated) ?(exact_limit = 200) g ~epsilon
    ~seed =
  let eps' = min 0.999 (max 1e-6 epsilon) in
  let pipeline = Pipeline.prepare ~mode g ~epsilon:eps' ~seed in
  let per_cluster =
    Pipeline.solve_locally pipeline (fun c ->
        if Graph.n c.sub <= exact_limit then Optimize.Vertex_cover.exact c.sub
        else Optimize.Vertex_cover.two_approx c.sub)
  in
  let chosen = collect (Graph.n g) per_cluster pipeline.clusters in
  (* inter-cluster edges: cover with the smaller-id endpoint if needed *)
  List.iter
    (fun e ->
      let u, v = Graph.endpoints g e in
      if (not chosen.(u)) && not chosen.(v) then chosen.(u) <- true)
    pipeline.decomposition.inter_edges;
  let solution = finalize chosen in
  { solution; size = List.length solution; pipeline }
