(** Theorem 1.5: low-diameter decomposition with D = O(1/epsilon) on
    H-minor-free networks (Section 3.5).

    Run the framework with [eps~ = epsilon / 2]; each leader locally
    refines its gathered cluster with a sequential minor-free LDD at
    [eps~ = epsilon / 2] (KPR band chopping, falling back on deterministic
    region growing if the random chop overshoots the local budget). The
    final cut is at most eps~|E| + eps~|E| = epsilon |E|. *)

type result = {
  partition : Decomp.Partition.t;
  max_diameter : int;
  cut_fraction : float;
  pipeline : Pipeline.t;
}

(** [run ?mode ?levels g ~epsilon ~seed] ([levels] is the KPR iteration
    count, default 2 — one per excluded-minor level for the planar-like
    families used in the experiments). *)
val run :
  ?mode:Pipeline.mode -> ?levels:int -> Sparse_graph.Graph.t ->
  epsilon:float -> seed:int -> result
