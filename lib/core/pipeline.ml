open Sparse_graph

type mode = Simulated | Charged

type engine = Spectral_engine | Cut_matching_engine

let engine_of_string = function
  | "spectral" -> Some Spectral_engine
  | "cutmatching" | "cut-matching" | "cm" -> Some Cut_matching_engine
  | _ -> None

let engine_name = function
  | Spectral_engine -> "spectral"
  | Cut_matching_engine -> "cutmatching"

type cluster = {
  leader : int;
  members : int list;
  sub : Graph.t;
  mapping : Graph_ops.mapping;
}

type report = {
  epsilon : float;
  phi : float;
  k : int;
  inter_edges : int;
  inter_fraction : float;
  charged_construction_rounds : int;
  diameter_bound : int;
  election_stats : Congest.Network.stats option;
  orientation_stats : Congest.Network.stats option;
  routing_stats : Congest.Network.stats option;
  broadcast_stats : Congest.Network.stats option;
  simulated_rounds : int;
}

type t = {
  graph : Graph.t;
  decomposition : Spectral.Expander_decomposition.t;
  view : Distr.Cluster_view.t;
  leader_of : int array;
  clusters : cluster array;
  report : report;
}

let construction_charge ~n ~epsilon =
  let logn = log (float_of_int (max 2 n)) /. log 2. in
  int_of_float (ceil ((logn ** 3.) /. (epsilon *. epsilon)))

let construction_charge_deterministic ~n ~epsilon =
  let logn = log (float_of_int (max 4 n)) /. log 2. in
  let loglogn = log logn /. log 2. in
  int_of_float
    (ceil ((2. ** sqrt (logn *. loglogn)) /. (epsilon *. epsilon)))

(* Cluster geometry (sorted members, induced subgraph, mapping), built once
   per prepare and shared between the diameter bound and the cluster
   records; independent clusters build on the pool. *)
let cluster_geometry pool g labels k =
  let members = Array.make k [] in
  for v = Array.length labels - 1 downto 0 do
    members.(labels.(v)) <- v :: members.(labels.(v))
  done;
  Parallel.Pool.map pool
    (fun vs ->
      let sub, mapping = Graph_ops.induced_subgraph g vs in
      (vs, sub, mapping))
    members

(* diameter bound b for flood phases: max strong diameter over clusters *)
let cluster_diameter_bound pool geometry =
  Parallel.Pool.map_reduce pool
    ~map:(fun (_, sub, _) -> Traversal.diameter sub)
    ~reduce:max ~init:1 geometry

(* central leader choice, matching the distributed election's rule: max
   intra-cluster degree, ties to the larger id *)
let central_leaders (view : Distr.Cluster_view.t) =
  let g = view.graph in
  let n = Graph.n g in
  let best = Hashtbl.create 16 in
  for v = 0 to n - 1 do
    let l = view.labels.(v) in
    let d = Distr.Cluster_view.intra_degree view v in
    match Hashtbl.find_opt best l with
    | Some (bd, bv) when (bd, bv) >= (d, v) -> ()
    | _ -> Hashtbl.replace best l (d, v)
  done;
  Array.init n (fun v -> snd (Hashtbl.find best view.labels.(v)))

let build_clusters geometry leader_of =
  Array.map
    (fun (vs, sub, mapping) ->
      let leader = leader_of.(List.hd vs) in
      { leader; members = vs; sub; mapping })
    geometry

let prepare ?(mode = Simulated) ?(engine = Spectral_engine)
    ?(pool = Parallel.Pool.sequential) g ~epsilon ~seed =
  Obs.Span.with_ "pipeline.prepare" @@ fun () ->
  let n = Graph.n g in
  let decomposition =
    match engine with
    | Spectral_engine -> Spectral.Expander_decomposition.decompose ~pool g ~epsilon
    | Cut_matching_engine -> fst (Flow.Decomp_engine.decompose ~pool g ~epsilon)
  in
  let view = Distr.Cluster_view.of_labels g decomposition.labels in
  let geometry =
    Obs.Span.with_ "pipeline.geometry" (fun () ->
        cluster_geometry pool g decomposition.labels decomposition.k)
  in
  let b =
    Obs.Span.with_ "pipeline.diameter" (fun () ->
        cluster_diameter_bound pool geometry)
  in
  let charged = construction_charge ~n ~epsilon in
  let inter = List.length decomposition.inter_edges in
  if Obs.enabled () then begin
    Obs.Metric.count "pipeline.clusters" decomposition.k;
    Obs.Metric.count "pipeline.inter_edges" inter;
    Obs.Metric.set_max "pipeline.diameter_bound" b;
    Array.iter
      (fun (vs, _, _) -> Obs.Metric.hist "pipeline.cluster_size" (List.length vs))
      geometry
  end;
  let base_report =
    {
      epsilon;
      phi = decomposition.phi;
      k = decomposition.k;
      inter_edges = inter;
      inter_fraction =
        (if Graph.m g = 0 then 0.
         else float_of_int inter /. float_of_int (Graph.m g));
      charged_construction_rounds = charged;
      diameter_bound = b;
      election_stats = None;
      orientation_stats = None;
      routing_stats = None;
      broadcast_stats = None;
      simulated_rounds = 0;
    }
  in
  match mode with
  | Charged ->
      let leader_of = central_leaders view in
      let clusters = build_clusters geometry leader_of in
      { graph = g; decomposition; view; leader_of; clusters;
        report = base_report }
  | Simulated ->
      let election =
        Obs.Span.with_ "pipeline.election" (fun () ->
            Distr.Leader_election.run view ~rounds:b)
      in
      if not (Distr.Leader_election.check view election) then
        failwith "Pipeline.prepare: leader election failed";
      let leader_of = election.leader_of in
      let density = max 1. (Graph.edge_density g) in
      (* gathering with doubling walk budgets until complete *)
      let rec gather_with budget attempts =
        let r =
          Distr.Gather.run view ~leader_of ~density ~walk_len:budget
            ~seed:(seed + attempts)
            ~max_rounds:(budget * 40)
        in
        if Distr.Gather.complete view ~leader_of r then r
        else if attempts >= 8 then
          failwith "Pipeline.prepare: gathering did not complete"
        else gather_with (budget * 2) (attempts + 1)
      in
      let logn = int_of_float (ceil (log (float_of_int (max 2 n)) /. log 2.)) in
      let initial_budget = max 64 (4 * b * b * logn) in
      let gather =
        Obs.Span.with_ "pipeline.gather" (fun () -> gather_with initial_budget 0)
      in
      let clusters = build_clusters geometry leader_of in
      let simulated_rounds =
        election.stats.Congest.Network.rounds
        + gather.orientation_stats.Congest.Network.rounds
        + gather.routing_stats.Congest.Network.last_traffic_round
      in
      {
        graph = g;
        decomposition;
        view;
        leader_of;
        clusters;
        report =
          {
            base_report with
            election_stats = Some election.stats;
            orientation_stats = Some gather.orientation_stats;
            routing_stats = Some gather.routing_stats;
            simulated_rounds;
          };
      }

let solve_locally t f = Array.map f t.clusters

(* the expander-routing serving layer over the prepared decomposition;
   both engines feed it the same shared record, so witness reuse kicks
   in exactly where matchings were retained *)
let routing_service ?reuse ?seed ?pool t =
  Route.Service.preprocess ?reuse ?seed ?pool t.graph t.decomposition

let broadcast_result t ~payload =
  match t.report.election_stats with
  | None -> None
  | Some _ ->
      let sources =
        Array.init (Graph.n t.graph) (fun v ->
            if t.leader_of.(v) = v then Some (payload v) else None)
      in
      let r =
        Distr.Broadcast.run t.view ~sources
          ~rounds:(t.report.diameter_bound + 1)
      in
      Some r.stats
