(* Quickstart: the Theorem 2.6 framework end to end on a planar network.

   Build a random planar graph, run the full simulated pipeline (expander
   decomposition -> leader election -> topology gathering by random walks ->
   local solve -> broadcast), and compute a (1 - eps)-approximate maximum
   independent set (Theorem 1.2).

   Run with: dune exec examples/quickstart.exe *)

open Sparse_graph

let () =
  let n = 60 in
  let epsilon = 0.3 in
  let g = Generators.random_apollonian n ~seed:42 in
  Printf.printf "network: random planar triangulation, n=%d m=%d\n" (Graph.n g)
    (Graph.m g);

  (* the full framework, with every communication phase simulated in the
     CONGEST model (messages capped at O(log n) bits per edge per round) *)
  let result = Core.App_mis.run ~mode:Core.Pipeline.Simulated g ~epsilon ~seed:1 in
  let report = result.pipeline.report in
  Printf.printf "expander decomposition: k=%d clusters, phi=%.2e, %d/%d (%.1f%%) inter-cluster edges\n"
    report.k report.phi report.inter_edges (Graph.m g)
    (100. *. report.inter_fraction);
  Printf.printf "CONGEST rounds (simulated election + orientation + routing): %d\n"
    report.simulated_rounds;
  Printf.printf "CONGEST rounds (charged for decomposition construction): %d\n"
    report.charged_construction_rounds;

  let opt = Optimize.Mis.exact_size g in
  Printf.printf "independent set found: %d (optimum %d, ratio %.3f, target >= %.3f)\n"
    result.size opt
    (Core.App_mis.ratio result ~opt)
    (1. -. epsilon);
  Printf.printf "conflicts removed across inter-cluster edges (|Z|): %d\n"
    result.conflicts_removed
