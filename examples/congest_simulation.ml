(* A tour of the CONGEST substrate (Section 2.2 machinery).

   Runs each distributed building block of the framework on its own and
   prints the measured round/bandwidth statistics: leader election by
   maximum degree, Barenboim-Elkin orientation, Lemma 2.4 random-walk
   routing, topology gathering, and the Section 2.3 diameter check.

   Run with: dune exec examples/congest_simulation.exe *)

open Sparse_graph
open Distr

let pp_stats label (s : Congest.Network.stats) =
  Printf.printf "  %-22s rounds=%-5d messages=%-7d max-edge-bits=%d\n" label
    s.rounds s.messages s.max_edge_bits

let () =
  let g = Generators.random_apollonian 48 ~seed:21 in
  Printf.printf "network: planar triangulation, n=%d m=%d, CONGEST bandwidth %s bits/edge/round\n"
    (Graph.n g) (Graph.m g)
    (match Congest.Network.congest_bandwidth (Graph.n g) with
    | Congest.Network.Congest b -> string_of_int b
    | Congest.Network.Local -> "unbounded");

  (* cluster the graph first, as the framework does *)
  let d = Spectral.Expander_decomposition.decompose g ~epsilon:0.3 in
  let view = Cluster_view.of_labels g d.labels in
  Printf.printf "expander decomposition: %d clusters, %d inter-cluster edges\n\n"
    d.k (List.length d.inter_edges);

  print_endline "phase 1: leader election (max intra-cluster degree)";
  let election = Leader_election.run view ~rounds:(Graph.n g) in
  pp_stats "election" election.stats;
  Printf.printf "  election valid: %b\n\n" (Leader_election.check view election);

  print_endline "phase 2: low-out-degree orientation (Barenboim-Elkin)";
  let orientation = Orientation.run view ~density:3. () in
  pp_stats "orientation" orientation.stats;
  Printf.printf "  peeling phases: %d, max out-degree: %d\n\n"
    orientation.phases
    (Array.fold_left max 0 orientation.out_degree);

  print_endline "phase 3: topology gathering by lazy random walks (Lemma 2.4)";
  let gather =
    Gather.run view ~leader_of:election.leader_of ~density:3. ~walk_len:4000
      ~seed:2 ~max_rounds:40000
  in
  Printf.printf "  %-22s rounds=%-5d messages=%-7d max-edge-bits=%d\n"
    "routing" gather.routing_stats.last_traffic_round
    gather.routing_stats.messages gather.routing_stats.max_edge_bits;
  Printf.printf "  tokens delivered: %.1f%%, every leader knows its cluster: %b\n\n"
    (100. *. gather.delivery)
    (Gather.complete view ~leader_of:election.leader_of gather);

  print_endline "phase 4: failure detection (Section 2.3 diameter check)";
  let check = Diameter_check.run view ~b:12 in
  pp_stats "diameter check" check.stats;
  Printf.printf "  marked vertices: %d (0 expected on a successful clustering)\n"
    (Array.fold_left (fun a b -> if b then a + 1 else a) 0 check.marked);

  print_endline "\nbaselines on the same network:";
  let mis = Luby_mis.run (Cluster_view.whole g) ~seed:3 in
  pp_stats "Luby MIS" mis.stats;
  let matching = Greedy_matching.run (Cluster_view.whole g) ~seed:4 () in
  pp_stats "greedy matching" matching.stats
