(* Road-network task assignment as maximum weight matching (Theorem 1.1).

   A city road network is planar; pairing adjacent depots and demand sites
   with profit weights is an MWM instance. We compare the paper's
   expander-framework scaling algorithm against the classic distributed
   baselines (greedy and path-growing 1/2-approximations).

   Run with: dune exec examples/road_network_matching.exe *)

open Sparse_graph

let () =
  let seed = 7 in
  (* a 20x20 city grid with some diagonal shortcuts removed: planar *)
  let g = Generators.random_planar 400 0.75 ~seed in
  let w = Weights.random g ~max_w:100 ~seed in
  Printf.printf "road network: n=%d m=%d, profits in [1, 100]\n" (Graph.n g)
    (Graph.m g);

  let framework =
    Core.App_matching.mwm ~mode:Core.Pipeline.Charged g w ~epsilon:0.2 ~seed
  in
  let greedy = Matching.Approx.greedy g w in
  let pg = Matching.Approx.path_growing g w in
  let value mate = Matching.Approx.weight g w mate in

  Printf.printf "expander-framework scaling MWM: weight %d (%d pairs)\n"
    framework.weight framework.size;
  Printf.printf "greedy 1/2-approximation:       weight %d\n" (value greedy);
  Printf.printf "path-growing 1/2-approximation: weight %d\n" (value pg);

  (* greedy certifies OPT <= 2 * greedy, so we can bound our ratio *)
  let opt_upper = 2 * value greedy in
  Printf.printf "certified ratio lower bound: %.3f (vs OPT <= %d)\n"
    (float_of_int framework.weight /. float_of_int opt_upper)
    opt_upper;
  match framework.pipeline with
  | Some p ->
      Printf.printf
        "last scale decomposition: %d clusters, %.1f%% inter-cluster edges\n"
        p.report.k
        (100. *. p.report.inter_fraction)
  | None -> ()
