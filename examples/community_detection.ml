(* Correlation clustering for community detection (Theorem 1.3).

   Edges of a collaboration network are labelled positive ("these two agree",
   e.g. same-community interactions) or negative (conflicting interactions,
   e.g. spam reports). Agreement-maximization correlation clustering
   recovers the communities; the paper's framework achieves (1 - eps) of
   the optimum on H-minor-free networks.

   Run with: dune exec examples/community_detection.exe *)

open Sparse_graph

let () =
  let seed = 11 in
  let g = Generators.grid 12 12 in
  (* four planted communities in quadrants, with 5% label noise *)
  let communities =
    Array.init (Graph.n g) (fun v ->
        let r = v / 12 and c = v mod 12 in
        (2 * (r / 6)) + (c / 6))
  in
  let labels = Generators.planted_sign_labels g communities ~noise:0.05 ~seed in
  Printf.printf "collaboration network: 12x12 grid, 4 planted communities, 5%% noise\n";
  Printf.printf "edges: %d (%d positive, %d negative)\n" (Graph.m g)
    (Array.fold_left (fun a b -> if b then a + 1 else a) 0 labels)
    (Array.fold_left (fun a b -> if b then a else a + 1) 0 labels);

  let r = Core.App_correlation.run ~mode:Core.Pipeline.Charged g ~labels
      ~epsilon:0.2 ~seed
  in
  Printf.printf "framework clustering: score %d / %d edges (%.1f%% agreement)\n"
    r.score (Graph.m g)
    (100. *. float_of_int r.score /. float_of_int (Graph.m g));

  (* reference points *)
  let planted_score = Optimize.Correlation.score g labels communities in
  let trivial =
    Optimize.Correlation.score g labels (Optimize.Correlation.trivial g labels)
  in
  Printf.printf "planted ground truth score:  %d\n" planted_score;
  Printf.printf "trivial clustering bound:    %d (gamma >= m/2 = %d)\n" trivial
    (Graph.m g / 2);
  Printf.printf "clusters used: %d\n"
    (Optimize.Correlation.cluster_count r.clustering)
