(* Distributed topology audit via property testing (Theorem 1.4).

   An operator believes the deployed overlay network is planar (it was
   designed that way). The distributed tester either certifies every node
   Accepts, or pinpoints clusters witnessing a violation -- with one-sided
   error: a genuinely planar network is never rejected.

   Run with: dune exec examples/topology_audit.exe *)

open Sparse_graph

let audit name g =
  let v =
    Core.App_property.run ~mode:Core.Pipeline.Charged g
      Minorfree.Properties.planar ~epsilon:0.15 ~seed:3
  in
  Printf.printf "%-28s n=%-5d m=%-5d -> %s" name (Graph.n g) (Graph.m g)
    (if v.accepted then "ACCEPT (all vertices)" else "REJECT");
  if not v.accepted then
    Printf.printf " (%d rejecting clusters, e.g. leader %d)"
      (List.length v.rejecting_clusters)
      (List.hd v.rejecting_clusters);
  print_newline ()

let () =
  print_endline "auditing claimed-planar overlays (property: planarity):";
  audit "healthy grid overlay" (Generators.grid 14 14);
  audit "healthy triangulation" (Generators.random_apollonian 250 ~seed:5);
  (* a misconfigured overlay: cross-links create many K5 minors, making the
     network epsilon-far from planar *)
  let corrupted =
    Generators.plant_k5s (Generators.grid 14 14) 25 ~seed:6
  in
  audit "corrupted overlay (25 K5s)" corrupted;
  (* a different property on the same tester: forests *)
  print_endline "\nauditing a spanning backbone (property: forest):";
  let backbone = Generators.random_tree 200 ~seed:7 in
  let v =
    Core.App_property.run ~mode:Core.Pipeline.Charged backbone
      Minorfree.Properties.forest ~epsilon:0.2 ~seed:8
  in
  Printf.printf "%-28s -> %s\n" "healthy backbone"
    (if v.accepted then "ACCEPT" else "REJECT");
  let noisy = Generators.add_random_edges backbone 120 ~seed:9 in
  let v2 =
    Core.App_property.run ~mode:Core.Pipeline.Charged noisy
      Minorfree.Properties.forest ~epsilon:0.2 ~seed:10
  in
  Printf.printf "%-28s -> %s\n" "backbone + 120 stray links"
    (if v2.accepted then "ACCEPT" else "REJECT")
