(* The distributed expander decomposition, watched level by level.

   Unlike the other examples (which use the centralized decomposition as an
   oracle, charging Theorem 2.1's round cost), this one runs the fully
   distributed construction: every power iteration, every convergecast, and
   every threshold probe is a CONGEST message within the O(log n)-bit
   budget. We then compare its output with the centralized oracle.

   Run with: dune exec examples/distributed_construction.exe *)

open Sparse_graph

let () =
  let g = Generators.blob_chain ~blobs:6 ~blob_size:12 ~seed:9 in
  Printf.printf
    "network: chain of 6 planar blobs joined by bridges, n=%d m=%d\n"
    (Graph.n g) (Graph.m g);
  Printf.printf "conductance bottlenecks: the 5 bridges\n\n";

  let epsilon = 0.4 in
  let dd = Distr.Distributed_decomposition.decompose g ~epsilon in
  Printf.printf "distributed construction (eps = %.1f):\n" epsilon;
  Printf.printf "  levels: %d, simulated CONGEST rounds: %d, messages: %d\n"
    dd.levels dd.total_rounds dd.total_messages;
  Printf.printf "  peak per-edge traffic: %d bits/round (budget: %d)\n"
    dd.max_edge_bits
    (12 * Congest.Bits.id_bits (Graph.n g));
  Printf.printf "  clusters: %d, inter-cluster edges: %d (tau = %.4f)\n"
    dd.k (List.length dd.inter_edges) dd.tau;
  let inter_ok, worst = Distr.Distributed_decomposition.verify g dd in
  Printf.printf "  epsilon budget respected: %b, min cluster conductance: %.4f\n"
    inter_ok worst;

  let oracle = Spectral.Expander_decomposition.decompose g ~epsilon in
  Printf.printf "\ncentralized oracle for comparison:\n";
  Printf.printf "  clusters: %d, inter-cluster edges: %d\n" oracle.k
    (List.length oracle.inter_edges);

  (* do the two agree on the blob structure? *)
  let agree = ref true in
  Graph.iter_edges g (fun _ u v ->
      let same_d = dd.labels.(u) = dd.labels.(v) in
      let same_o = oracle.labels.(u) = oracle.labels.(v) in
      if same_d <> same_o then agree := false);
  Printf.printf "  identical clusterings (as edge partitions): %b\n" !agree
