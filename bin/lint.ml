(* Determinism & domain-safety linter over lib/, bench/ and bin/.

     dune build @lint                  # full run, fails on new findings
     dune exec bin/lint.exe -- --format json
     dune exec bin/lint.exe -- --jobs 4
     dune exec bin/lint.exe -- --explain P002
     dune exec bin/lint.exe -- --write-baseline lint.baseline

   Findings are AST-level (compiler-libs Parsetree), reported as
   file:line:col with a rule id. A finding is silenced either by an
   inline comment on the same or the preceding line —
       (* lint: allow D003 timing harness *)
   — or by an entry in the checked-in baseline file (grandfathered
   findings; see --write-baseline). Hot-path roots for the A001
   allocation rule are declared the same way:
       (* lint: hot *)

   The linter eats its own cooking: --jobs N fans file loading and the
   per-file rules out over the Parallel.Pool, and the report is
   byte-identical at every N (see --compare-reports). *)

let usage () =
  print_string
    "usage: lint.exe [options]\n\
     \  --root DIR        repo root to scan (default .)\n\
     \  --dirs A,B,C      directories under root (default lib,bench,bin)\n\
     \  --format FMT      text | json (default text)\n\
     \  --jobs N          fan per-file work out over N domains (default 1)\n\
     \  --baseline FILE   baseline of grandfathered findings\n\
     \  --write-baseline FILE  regenerate the baseline and exit\n\
     \  --report FILE     also write the JSON report to FILE\n\
     \  --rules           print the rule catalog and exit\n\
     \  --explain RULE    print one rule's rationale and how to fix it\n\
     \  --verify-report FILE   exit 1 unless FILE reports zero new findings\n\
     \  --compare-reports A B  exit 1 unless files A and B are byte-identical\n"

let print_rules () =
  List.iter
    (fun (r : Analysis.Rule.t) ->
      Printf.printf "%s (%s, %s) — %s\n  %s\n" r.id
        (Analysis.Finding.severity_name r.severity)
        (match r.scope with
        | Analysis.Rule.Per_source -> "per-file"
        | Analysis.Rule.Global -> "whole-project")
        r.title r.doc)
    Analysis.Rules.all

let explain id =
  match Analysis.Rules.find id with
  | Some (r : Analysis.Rule.t) ->
      Printf.printf "%s (%s) — %s\n\nWhy it fires:\n  %s\n\nHow to fix:\n  %s\n"
        r.id
        (Analysis.Finding.severity_name r.severity)
        r.title r.doc r.fix;
      exit 0
  | None ->
      Printf.eprintf "lint: unknown rule %S; --rules lists the catalog\n" id;
      exit 2

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let content = really_input_string ic n in
  close_in ic;
  content

let write_file path content =
  let oc = open_out_bin path in
  output_string oc content;
  close_out oc

(* "\"new\": N" in a version-2 report without a JSON parser: the key is
   emitted exactly once, at the top level, by Engine.to_json *)
let new_count_of_report content =
  let key = "\"new\":" in
  let klen = String.length key in
  let len = String.length content in
  let rec find i =
    if i + klen > len then None
    else if String.sub content i klen = key then begin
      let rec skip j =
        if j < len && content.[j] = ' ' then skip (j + 1) else j
      in
      let s = skip (i + klen) in
      let rec stop j =
        if j < len && content.[j] >= '0' && content.[j] <= '9' then
          stop (j + 1)
        else j
      in
      let e = stop s in
      if e > s then Some (int_of_string (String.sub content s (e - s)))
      else None
    end
    else find (i + 1)
  in
  find 0

let verify_report path =
  match new_count_of_report (read_file path) with
  | Some 0 ->
      Printf.printf "lint: %s reports 0 new findings\n" path;
      exit 0
  | Some n ->
      Printf.eprintf
        "lint: %s reports %d new finding%s; fix them or suppress each with \
         a reasoned allow comment (never silently baseline)\n"
        path n
        (if n = 1 then "" else "s");
      exit 1
  | None ->
      Printf.eprintf "lint: %s has no \"new\" count — not a lint report?\n"
        path;
      exit 2

let compare_reports a b =
  if read_file a = read_file b then begin
    Printf.printf "lint: %s and %s are byte-identical\n" a b;
    exit 0
  end
  else begin
    Printf.eprintf
      "lint: %s and %s differ — per-file fan-out broke report determinism\n"
      a b;
    exit 1
  end

let () =
  let root = ref "." in
  let dirs = ref [ "lib"; "bench"; "bin" ] in
  let format = ref "text" in
  let jobs = ref 1 in
  let baseline_path = ref None in
  let write_baseline = ref None in
  let report_path = ref None in
  let rec parse = function
    | [] -> ()
    | "--root" :: v :: rest ->
        root := v;
        parse rest
    | "--dirs" :: v :: rest ->
        dirs := String.split_on_char ',' v;
        parse rest
    | "--format" :: v :: rest ->
        format := v;
        parse rest
    | "--jobs" :: v :: rest ->
        (match int_of_string_opt v with
        | Some n when n >= 1 -> jobs := n
        | _ ->
            Printf.eprintf "lint: --jobs takes a positive integer, got %S\n" v;
            exit 2);
        parse rest
    | "--baseline" :: v :: rest ->
        baseline_path := Some v;
        parse rest
    | "--write-baseline" :: v :: rest ->
        write_baseline := Some v;
        parse rest
    | "--report" :: v :: rest ->
        report_path := Some v;
        parse rest
    | "--rules" :: _ ->
        print_rules ();
        exit 0
    | "--explain" :: v :: _ -> explain v
    | "--verify-report" :: v :: _ -> verify_report v
    | "--compare-reports" :: a :: b :: _ -> compare_reports a b
    | ("--help" | "-h") :: _ ->
        usage ();
        exit 0
    | arg :: _ ->
        Printf.eprintf "lint: unknown argument %S\n" arg;
        usage ();
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !format <> "text" && !format <> "json" then begin
    Printf.eprintf "lint: --format must be text or json, got %S\n" !format;
    exit 2
  end;
  let pool = Parallel.Pool.create ~jobs:!jobs () in
  let sources, libraries =
    Analysis.Engine.load_tree ~pool ~root:!root ~dirs:!dirs ()
  in
  if sources = [] then begin
    Printf.eprintf "lint: no .ml files found under %s (dirs: %s)\n" !root
      (String.concat ", " !dirs);
    exit 2
  end;
  match !write_baseline with
  | Some path ->
      (* regenerate: every finding that is not inline-suppressed gets
         grandfathered *)
      let report = Analysis.Engine.analyze ~pool ~libraries sources in
      let kept =
        List.filter_map
          (fun (f, st) ->
            if st = Analysis.Engine.Suppressed then None else Some f)
          report.Analysis.Engine.results
      in
      write_file path (Analysis.Baseline.to_string (Analysis.Baseline.of_findings kept));
      Printf.printf "lint: wrote %d entr%s to %s\n" (List.length kept)
        (if List.length kept = 1 then "y" else "ies")
        path
  | None ->
      let baseline =
        match !baseline_path with
        | Some p -> Analysis.Baseline.load (Filename.concat !root p)
        | None -> Analysis.Baseline.empty
      in
      let report = Analysis.Engine.analyze ~pool ~libraries ~baseline sources in
      (match !report_path with
      | Some p -> write_file p (Analysis.Engine.to_json report)
      | None -> ());
      print_string
        (match !format with
        | "json" -> Analysis.Engine.to_json report
        | _ -> Analysis.Engine.to_text report);
      exit (Analysis.Engine.exit_code report)
