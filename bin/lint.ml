(* Determinism & domain-safety linter over lib/, bench/ and bin/.

     dune build @lint                  # full run, fails on new findings
     dune exec bin/lint.exe -- --format json
     dune exec bin/lint.exe -- --write-baseline lint.baseline

   Findings are AST-level (compiler-libs Parsetree), reported as
   file:line:col with a rule id. A finding is silenced either by an
   inline comment on the same or the preceding line —
       (* lint: allow D003 timing harness *)
   — or by an entry in the checked-in baseline file (grandfathered
   findings; see --write-baseline). *)

let usage () =
  print_string
    "usage: lint.exe [options]\n\
     \  --root DIR        repo root to scan (default .)\n\
     \  --dirs A,B,C      directories under root (default lib,bench,bin)\n\
     \  --format FMT      text | json (default text)\n\
     \  --baseline FILE   baseline of grandfathered findings\n\
     \  --write-baseline FILE  regenerate the baseline and exit\n\
     \  --report FILE     also write the JSON report to FILE\n\
     \  --rules           print the rule catalog and exit\n"

let print_rules () =
  List.iter
    (fun (r : Analysis.Rule.t) ->
      Printf.printf "%s (%s) — %s\n  %s\n" r.id
        (Analysis.Finding.severity_name r.severity)
        r.title r.doc)
    Analysis.Rules.all

let write_file path content =
  let oc = open_out_bin path in
  output_string oc content;
  close_out oc

let () =
  let root = ref "." in
  let dirs = ref [ "lib"; "bench"; "bin" ] in
  let format = ref "text" in
  let baseline_path = ref None in
  let write_baseline = ref None in
  let report_path = ref None in
  let rec parse = function
    | [] -> ()
    | "--root" :: v :: rest ->
        root := v;
        parse rest
    | "--dirs" :: v :: rest ->
        dirs := String.split_on_char ',' v;
        parse rest
    | "--format" :: v :: rest ->
        format := v;
        parse rest
    | "--baseline" :: v :: rest ->
        baseline_path := Some v;
        parse rest
    | "--write-baseline" :: v :: rest ->
        write_baseline := Some v;
        parse rest
    | "--report" :: v :: rest ->
        report_path := Some v;
        parse rest
    | "--rules" :: _ ->
        print_rules ();
        exit 0
    | ("--help" | "-h") :: _ ->
        usage ();
        exit 0
    | arg :: _ ->
        Printf.eprintf "lint: unknown argument %S\n" arg;
        usage ();
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !format <> "text" && !format <> "json" then begin
    Printf.eprintf "lint: --format must be text or json, got %S\n" !format;
    exit 2
  end;
  let sources, libraries = Analysis.Engine.load_tree ~root:!root ~dirs:!dirs in
  if sources = [] then begin
    Printf.eprintf "lint: no .ml files found under %s (dirs: %s)\n" !root
      (String.concat ", " !dirs);
    exit 2
  end;
  match !write_baseline with
  | Some path ->
      (* regenerate: every finding that is not inline-suppressed gets
         grandfathered *)
      let report = Analysis.Engine.analyze ~libraries sources in
      let kept =
        List.filter_map
          (fun (f, st) ->
            if st = Analysis.Engine.Suppressed then None else Some f)
          report.Analysis.Engine.results
      in
      write_file path (Analysis.Baseline.to_string (Analysis.Baseline.of_findings kept));
      Printf.printf "lint: wrote %d entr%s to %s\n" (List.length kept)
        (if List.length kept = 1 then "y" else "ies")
        path
  | None ->
      let baseline =
        match !baseline_path with
        | Some p -> Analysis.Baseline.load (Filename.concat !root p)
        | None -> Analysis.Baseline.empty
      in
      let report = Analysis.Engine.analyze ~libraries ~baseline sources in
      (match !report_path with
      | Some p -> write_file p (Analysis.Engine.to_json report)
      | None -> ());
      print_string
        (match !format with
        | "json" -> Analysis.Engine.to_json report
        | _ -> Analysis.Engine.to_text report);
      exit (Analysis.Engine.exit_code report)
