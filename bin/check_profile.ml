(* Profile validator for the @bench-smoke gate.

     check_profile.exe --schema PROFILE [--trace TRACE]
     check_profile.exe --compare A B
     check_profile.exe --congest-bench BENCH
     check_profile.exe --decomp-bench BENCH [--require-frontier]

   --schema structurally validates a profile emitted by bench/main.exe
   --profile: schema name/version, the deterministic section (span tree
   of integer counters, totals, peaks) and the volatile section; fault
   counters (net.dropped / net.duplicated / net.crashed_rounds) must be
   non-negative and never exceed congest.messages in the same node. With
   --trace it also checks the Chrome trace_event file is well-formed
   (an object with a traceEvents list of complete events). --compare
   parses two profiles and fails unless their deterministic sections
   are identical after canonical re-serialization — the cross-run /
   cross---jobs parity contract. --congest-bench validates a
   BENCH_congest.json written by the congest-bench experiment: schema
   name, per-workload structure, stats_equal = true everywhere, and
   the scheduling invariant active_vertices <= n * rounds.
   --decomp-bench validates a BENCH_decomp.json written by the
   decomp-bench experiment (see check_decomp_bench below). Exit code 0
   on success, 1 with a message on the first violation found. *)

open Obs

exception Bad of string

let fail fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let parse path =
  match Json.of_string (read_file path) with
  | j -> j
  | exception Json.Parse_error msg -> fail "%s: JSON parse error: %s" path msg
  | exception Sys_error msg -> fail "cannot read %s: %s" path msg

let member name = function
  | Json.Obj fields -> List.assoc_opt name fields
  | _ -> None

let require path name j =
  match member name j with
  | Some v -> v
  | None -> fail "%s: missing %S member" path name

(* fault counters recorded by Obs.Meter.faults: non-negative, and a span
   cannot drop more messages than it sent *)
let fault_counters = [ "net.dropped"; "net.duplicated"; "net.crashed_rounds" ]

let check_fault_counters path ctx fields =
  List.iter
    (fun k ->
      match List.assoc_opt k fields with
      | Some (Json.Int v) when v < 0 -> fail "%s: %s.%s is negative" path ctx k
      | _ -> ())
    fault_counters;
  match (List.assoc_opt "net.dropped" fields,
         List.assoc_opt "congest.messages" fields)
  with
  | Some (Json.Int d), Some (Json.Int m) when d > m ->
      fail "%s: %s has net.dropped = %d > congest.messages = %d" path ctx d m
  | _ -> ()

let int_object path ctx = function
  | Json.Obj fields ->
      List.iter
        (fun (k, v) ->
          match v with
          | Json.Int _ -> ()
          | _ -> fail "%s: %s.%s is not an integer" path ctx k)
        fields;
      check_fault_counters path ctx fields
  | _ -> fail "%s: %s is not an object" path ctx

(* the deterministic span tree: count plus optional metrics/max/children *)
let rec check_node path ctx j =
  match j with
  | Json.Obj fields ->
      (match List.assoc_opt "count" fields with
      | Some (Json.Int c) when c >= 0 -> ()
      | Some (Json.Int _) -> fail "%s: %s.count is negative" path ctx
      | _ -> fail "%s: %s.count missing or not an integer" path ctx);
      List.iter
        (fun (k, v) ->
          match k with
          | "count" -> ()
          | "metrics" | "max" -> int_object path (ctx ^ "." ^ k) v
          | "children" ->
              (match v with
              | Json.Obj kids ->
                  List.iter
                    (fun (name, kid) ->
                      check_node path (ctx ^ "/" ^ name) kid)
                    kids
              | _ -> fail "%s: %s.children is not an object" path ctx)
          | other -> fail "%s: %s has unexpected member %S" path ctx other)
        fields
  | _ -> fail "%s: %s is not an object" path ctx

let check_schema path =
  let doc = parse path in
  (match require path "schema" doc with
  | Json.Str s when s = Export.schema_name -> ()
  | Json.Str s ->
      fail "%s: schema is %S, expected %S" path s Export.schema_name
  | _ -> fail "%s: schema is not a string" path);
  (match require path "version" doc with
  | Json.Int v when v = Export.schema_version -> ()
  | Json.Int v ->
      fail "%s: version is %d, expected %d" path v Export.schema_version
  | _ -> fail "%s: version is not an integer" path);
  let det = require path "deterministic" doc in
  check_node path "spans" (require path "spans" det);
  int_object path "totals" (require path "totals" det);
  int_object path "peaks" (require path "peaks" det);
  let vol = require path "volatile" doc in
  (match require path "spans" vol with
  | Json.Obj _ -> ()
  | _ -> fail "%s: volatile.spans is not an object" path);
  Printf.printf "%s: profile ok\n" path

let check_trace path =
  let doc = parse path in
  match require path "traceEvents" doc with
  | Json.List events ->
      List.iteri
        (fun i e ->
          let ctx = Printf.sprintf "traceEvents[%d]" i in
          match e with
          | Json.Obj _ ->
              (match member "ph" e with
              | Some (Json.Str "X") -> ()
              | _ -> fail "%s: %s.ph is not \"X\"" path ctx);
              List.iter
                (fun k ->
                  match member k e with
                  | Some (Json.Str _) when k = "name" -> ()
                  | Some (Json.Int v) when k <> "name" && v >= 0 -> ()
                  | _ ->
                      fail "%s: %s.%s missing or ill-typed" path ctx k)
                [ "name"; "ts"; "dur"; "pid"; "tid" ]
          | _ -> fail "%s: %s is not an object" path ctx)
        events;
      Printf.printf "%s: trace ok (%d events)\n" path (List.length events)
  | _ -> fail "%s: traceEvents is not a list" path

(* canonical form of the deterministic section: re-serialized compactly,
   so formatting differences cannot mask or fake a mismatch *)
let canonical path =
  Json.to_string (require path "deterministic" (parse path))

let compare_profiles a b =
  let ca = canonical a and cb = canonical b in
  if String.equal ca cb then
    Printf.printf "%s == %s: deterministic sections identical (%d bytes)\n" a b
      (String.length ca)
  else fail "%s and %s: deterministic sections differ" a b

(* BENCH_congest.json: the congest-bench scheduler comparison *)
let congest_int path ctx w name =
  match member name w with
  | Some (Json.Int v) when v >= 0 -> v
  | Some (Json.Int _) -> fail "%s: %s.%s is negative" path ctx name
  | _ -> fail "%s: %s.%s missing or not an integer" path ctx name

let check_congest_side path ctx w label =
  match member label w with
  | Some (Json.Obj _ as side) ->
      List.iter
        (fun k ->
          (* whole-valued floats round-trip through the printer as ints *)
          match member k side with
          | Some (Json.Float v) when v >= 0. -> ()
          | Some (Json.Int v) when v >= 0 -> ()
          | Some (Json.Float _) | Some (Json.Int _) ->
              fail "%s: %s.%s.%s is negative" path ctx label k
          | _ ->
              fail "%s: %s.%s.%s missing or not numeric" path ctx label k)
        [ "seconds"; "rounds_per_sec"; "minor_words_per_round" ];
      ignore (congest_int path (ctx ^ "." ^ label) side "round_calls")
  | _ -> fail "%s: %s.%s missing or not an object" path ctx label

let check_congest_bench path =
  let doc = parse path in
  (match require path "schema" doc with
  | Json.Str "expander-congest-bench" -> ()
  | Json.Str s ->
      fail "%s: schema is %S, expected \"expander-congest-bench\"" path s
  | _ -> fail "%s: schema is not a string" path);
  (match require path "workloads" doc with
  | Json.List [] -> fail "%s: workloads is empty" path
  | Json.List ws ->
      List.iteri
        (fun idx w ->
          let ctx = Printf.sprintf "workloads[%d]" idx in
          (match member "name" w with
          | Some (Json.Str _) -> ()
          | _ -> fail "%s: %s.name missing or not a string" path ctx);
          let n = congest_int path ctx w "n" in
          let rounds = congest_int path ctx w "rounds" in
          ignore (congest_int path ctx w "messages");
          let active = congest_int path ctx w "active_vertices" in
          (* the scheduling invariant: no loop steps a vertex more than
             once per round *)
          if active > n * rounds then
            fail "%s: %s.active_vertices = %d > n * rounds = %d" path ctx
              active (n * rounds);
          check_congest_side path ctx w "reference";
          check_congest_side path ctx w "event";
          check_congest_side path ctx w "sharded";
          (match member "stats_equal" w with
          | Some (Json.Bool true) -> ()
          | Some (Json.Bool false) ->
              fail "%s: %s.stats_equal is false — scheduler divergence" path
                ctx
          | _ -> fail "%s: %s.stats_equal missing or not a bool" path ctx))
        ws;
      Printf.printf "%s: congest-bench ok (%d workloads)\n" path
        (List.length ws)
  | _ -> fail "%s: workloads is not a list" path);
  (* the scaling ladder: per-workload entries must appear at strictly
     increasing n (a flat or shuffled ladder means the sweep silently
     reran one size), each rung numeric, every rung stats-equal *)
  match require path "scaling" doc with
  | Json.List [] -> fail "%s: scaling is empty" path
  | Json.List entries ->
      let last_n : (string, int) Hashtbl.t = Hashtbl.create 8 in
      List.iteri
        (fun idx e ->
          let ctx = Printf.sprintf "scaling[%d]" idx in
          let name =
            match member "name" e with
            | Some (Json.Str s) -> s
            | _ -> fail "%s: %s.name missing or not a string" path ctx
          in
          let n = congest_int path ctx e "n" in
          ignore (congest_int path ctx e "rounds");
          List.iter
            (fun k ->
              match member k e with
              | Some (Json.Float v) when v >= 0. -> ()
              | Some (Json.Int v) when v >= 0 -> ()
              | Some (Json.Float _) | Some (Json.Int _) ->
                  fail "%s: %s.%s is negative" path ctx k
              | _ -> fail "%s: %s.%s missing or not numeric" path ctx k)
            [ "event_seconds"; "sharded_seconds"; "speedup" ];
          (match member "stats_equal" e with
          | Some (Json.Bool true) -> ()
          | Some (Json.Bool false) ->
              fail "%s: %s.stats_equal is false — shard divergence" path ctx
          | _ -> fail "%s: %s.stats_equal missing or not a bool" path ctx);
          (match Hashtbl.find_opt last_n name with
          | Some prev when n <= prev ->
              fail "%s: %s: n = %d after n = %d for %S — not monotone" path
                ctx n prev name
          | _ -> ());
          Hashtbl.replace last_n name n)
        entries;
      Printf.printf "%s: scaling ladder ok (%d entries)\n" path
        (List.length entries)
  | _ -> fail "%s: scaling is not a list" path

(* BENCH_decomp.json: the spectral vs cut-matching frontier.

   Structure: schema/version, numeric fields non-negative,
   inter_fraction in [0, 1], both engines present at every (family, n)
   point, per (family, engine) strictly increasing n (the ladder is
   monotone), and oracle_ok = true wherever the conductance oracle ran.
   With --require-frontier additionally enforces the quality-vs-speed
   claim on the largest rung of each family: cut-matching must be no
   slower than spectral at an equal-or-better inter-cluster edge
   fraction. Gates on freshly generated small runs omit the flag — at
   tiny sizes the game's fixed costs dominate and the frontier claim is
   only made for the committed full-size file. *)

let decomp_num path ctx e name =
  match member name e with
  | Some (Json.Float v) when v >= 0. -> v
  | Some (Json.Int v) when v >= 0 -> float_of_int v
  | Some (Json.Float _) | Some (Json.Int _) ->
      fail "%s: %s.%s is negative" path ctx name
  | _ -> fail "%s: %s.%s missing or not numeric" path ctx name

let check_decomp_bench path ~require_frontier =
  let doc = parse path in
  (match require path "schema" doc with
  | Json.Str "expander-decomp-bench" -> ()
  | Json.Str s ->
      fail "%s: schema is %S, expected \"expander-decomp-bench\"" path s
  | _ -> fail "%s: schema is not a string" path);
  (match require path "version" doc with
  | Json.Int 1 -> ()
  | Json.Int v -> fail "%s: version is %d, expected 1" path v
  | _ -> fail "%s: version is not an integer" path);
  ignore (decomp_num path "doc" doc "epsilon");
  match require path "results" doc with
  | Json.List [] -> fail "%s: results is empty" path
  | Json.List entries ->
      (* (family, engine) -> last n seen; (family, n) -> engine set;
         (family, engine) -> best entry at max n *)
      let last_n : (string * string, int) Hashtbl.t = Hashtbl.create 8 in
      let seen : (string * int, string list) Hashtbl.t = Hashtbl.create 8 in
      let at_max : (string * string, int * float * float) Hashtbl.t =
        Hashtbl.create 8
      in
      let oracles = ref 0 in
      List.iteri
        (fun idx e ->
          let ctx = Printf.sprintf "results[%d]" idx in
          let str name =
            match member name e with
            | Some (Json.Str s) -> s
            | _ -> fail "%s: %s.%s missing or not a string" path ctx name
          in
          let family = str "family" in
          let engine = str "engine" in
          if engine <> "spectral" && engine <> "cutmatching" then
            fail "%s: %s.engine is %S, expected spectral or cutmatching" path
              ctx engine;
          let n = int_of_float (decomp_num path ctx e "n") in
          let seconds = decomp_num path ctx e "seconds" in
          let frac = decomp_num path ctx e "inter_fraction" in
          if frac > 1. then
            fail "%s: %s.inter_fraction = %f > 1" path ctx frac;
          List.iter
            (fun k -> ignore (decomp_num path ctx e k))
            [ "k"; "inter_edges"; "phi"; "tau"; "games"; "game_rounds";
              "flow_calls"; "heuristic_cuts" ];
          (match member "oracle_checked" e with
          | Some (Json.Bool true) -> (
              incr oracles;
              ignore (decomp_num path ctx e "min_conductance");
              match member "oracle_ok" e with
              | Some (Json.Bool true) -> ()
              | Some (Json.Bool false) ->
                  fail
                    "%s: %s.oracle_ok is false — a cluster failed the \
                     conductance oracle"
                    path ctx
              | _ -> fail "%s: %s.oracle_ok missing or not a bool" path ctx)
          | Some (Json.Bool false) -> ()
          | _ -> fail "%s: %s.oracle_checked missing or not a bool" path ctx);
          (match Hashtbl.find_opt last_n (family, engine) with
          | Some prev when n <= prev ->
              fail "%s: %s: n = %d after n = %d for %s/%s — not monotone"
                path ctx n prev family engine
          | _ -> ());
          Hashtbl.replace last_n (family, engine) n;
          let engines_here =
            Option.value ~default:[] (Hashtbl.find_opt seen (family, n))
          in
          if List.mem engine engines_here then
            fail "%s: %s: duplicate %s/%s entry at n = %d" path ctx family
              engine n;
          Hashtbl.replace seen (family, n) (engine :: engines_here);
          (match Hashtbl.find_opt at_max (family, engine) with
          | Some (prev, _, _) when prev >= n -> ()
          | _ -> Hashtbl.replace at_max (family, engine) (n, seconds, frac)))
        entries;
      Hashtbl.iter
        (fun (family, n) engines ->
          if not (List.mem "spectral" engines && List.mem "cutmatching" engines)
          then
            fail "%s: %s at n = %d has only [%s] — both engines required"
              path family n
              (String.concat ", " engines))
        seen;
      let frontier_checked = ref 0 in
      if require_frontier then begin
        (* iterate families in sorted order, not hash order *)
        let cm_points =
          Hashtbl.fold
            (fun (family, engine) v acc ->
              if engine = "cutmatching" then (family, v) :: acc else acc)
            at_max []
          |> List.sort compare
        in
        List.iter
          (fun (family, (n, cm_s, cm_frac)) ->
            match Hashtbl.find_opt at_max (family, "spectral") with
            | Some (sp_n, sp_s, sp_frac) when sp_n = n ->
                incr frontier_checked;
                if cm_s > sp_s then
                  fail
                    "%s: frontier: %s at n = %d: cutmatching %.3fs slower \
                     than spectral %.3fs"
                    path family n cm_s sp_s;
                if cm_frac > sp_frac +. 1e-9 then
                  fail
                    "%s: frontier: %s at n = %d: cutmatching inter \
                     fraction %.4f worse than spectral %.4f"
                    path family n cm_frac sp_frac
            | _ ->
                fail "%s: frontier: %s lacks a spectral entry at n = %d" path
                  family n)
          cm_points
      end;
      Printf.printf "%s: decomp-bench ok (%d entries, %d oracle-checked%s)\n"
        path (List.length entries) !oracles
        (if require_frontier then
           Printf.sprintf ", frontier ok on %d families" !frontier_checked
         else "")
  | _ -> fail "%s: results is not a list" path

(* allocation-linearity bound for the walk router's hot-spot probe:
   doubling the token load must not grow minor words per token by more
   than this factor (the old quadratic inbox merge roughly doubled it) *)
let route_alloc_ratio_limit = 1.5

let check_route_bench path ~require_congestion_win ~require_jobs_speedup =
  let doc = parse path in
  (match require path "schema" doc with
  | Json.Str "expander-route-bench" -> ()
  | Json.Str s ->
      fail "%s: schema is %S, expected \"expander-route-bench\"" path s
  | _ -> fail "%s: schema is not a string" path);
  (match require path "version" doc with
  | Json.Int 2 -> ()
  | Json.Int v -> fail "%s: version is %d, expected 2" path v
  | _ -> fail "%s: version is not an integer" path);
  ignore (decomp_num path "doc" doc "epsilon");
  (match require path "walk_router" doc with
  | Json.Obj _ as w ->
      ignore (decomp_num path "walk_router" w "words_per_token_1x");
      ignore (decomp_num path "walk_router" w "words_per_token_2x");
      let ratio = decomp_num path "walk_router" w "alloc_ratio" in
      if ratio > route_alloc_ratio_limit then
        fail
          "%s: walk_router.alloc_ratio = %.2f > %.2f — per-token \
           allocation grows with load (quadratic hot path?)"
          path ratio route_alloc_ratio_limit
  | _ -> fail "%s: walk_router missing or not an object" path);
  (* jobs ladder: the epoch-parallel planner served the same batch at
     increasing pool sizes; the summaries must agree at every rung *)
  (match require path "jobs_ladder" doc with
  | Json.List [] -> fail "%s: jobs_ladder is empty" path
  | Json.List rungs ->
      let prev_jobs = ref 0 in
      let dps1 = ref 0. in
      let best_speedup = ref 0. in
      List.iteri
        (fun idx r ->
          let rctx = Printf.sprintf "jobs_ladder[%d]" idx in
          let jobs = int_of_float (decomp_num path rctx r "jobs") in
          if idx = 0 && jobs <> 1 then
            fail "%s: %s: ladder must start at jobs = 1" path rctx;
          if jobs <= !prev_jobs then
            fail "%s: %s: jobs %d after %d — not increasing" path rctx jobs
              !prev_jobs;
          prev_jobs := jobs;
          ignore (decomp_num path rctx r "seconds");
          let dps = decomp_num path rctx r "demands_per_sec" in
          if dps <= 0. then fail "%s: %s: demands_per_sec <= 0" path rctx;
          if idx = 0 then dps1 := dps;
          let sp = decomp_num path rctx r "speedup_vs_j1" in
          if sp > !best_speedup then best_speedup := sp;
          match member "summary_equal" r with
          | Some (Json.Bool true) -> ()
          | Some (Json.Bool false) ->
              fail
                "%s: %s: summary_equal is false — parallel serving broke \
                 the determinism contract"
                path rctx
          | _ -> fail "%s: %s.summary_equal missing or not a bool" path rctx)
        rungs;
      (match require_jobs_speedup with
      | None -> ()
      | Some f ->
          if !best_speedup < f then
            fail
              "%s: jobs ladder best speedup %.2fx < required %.2fx (needs \
               a multi-core host)"
              path !best_speedup f)
  | _ -> fail "%s: jobs_ladder is not a list" path);
  match require path "results" doc with
  | Json.List [] -> fail "%s: results is empty" path
  | Json.List entries ->
      (* (family, engine, reuse) -> last n seen, for ladder monotonicity *)
      let last_n : (string * string * bool, int) Hashtbl.t =
        Hashtbl.create 8
      in
      (* family -> (n, hotspot rr cmax / ll cmax) per entry, for the
         congestion-win requirement at each family's top rung *)
      let wins : (string, (int * float) list ref) Hashtbl.t =
        Hashtbl.create 4
      in
      let congest_checked = ref 0 in
      List.iteri
        (fun idx e ->
          let ctx = Printf.sprintf "results[%d]" idx in
          let str name =
            match member name e with
            | Some (Json.Str s) -> s
            | _ -> fail "%s: %s.%s missing or not a string" path ctx name
          in
          let family = str "family" in
          let engine = str "engine" in
          if engine <> "spectral" && engine <> "cutmatching" then
            fail "%s: %s.engine is %S, expected spectral or cutmatching" path
              ctx engine;
          let reuse =
            match member "reuse" e with
            | Some (Json.Bool b) -> b
            | _ -> fail "%s: %s.reuse missing or not a bool" path ctx
          in
          let n = int_of_float (decomp_num path ctx e "n") in
          List.iter
            (fun k -> ignore (decomp_num path ctx e k))
            [ "preprocess_seconds"; "clusters"; "shortcuts"; "rebuilt_leaves";
              "reused_leaves"; "tree_height" ];
          (match member "patterns" e with
          | Some (Json.List ps) when List.length ps = 4 ->
              (* v2: each workload is served once per selection policy on
                 the same batch; collect (pattern, policy) -> stats *)
              let seen = ref [] in
              List.iter
                (fun p ->
                  let pctx = Printf.sprintf "%s.patterns" ctx in
                  let pstr k =
                    match member k p with
                    | Some (Json.Str s) -> s
                    | _ -> fail "%s: %s.%s missing" path pctx k
                  in
                  let pname = pstr "pattern" in
                  let policy = pstr "policy" in
                  if policy <> "round_robin" && policy <> "least_loaded" then
                    fail "%s: %s: unknown policy %S" path pctx policy;
                  if List.mem_assoc (pname, policy) !seen then
                    fail "%s: %s: duplicate %s/%s serve" path pctx pname
                      policy;
                  let num k = decomp_num path pctx p k in
                  let demands = int_of_float (num "demands") in
                  let delivered = int_of_float (num "delivered") in
                  let failed = int_of_float (num "failed") in
                  if delivered + failed <> demands then
                    fail
                      "%s: %s (%s/%s): delivered %d + failed %d <> demands %d"
                      path pctx pname policy delivered failed demands;
                  if failed > 0 then
                    fail
                      "%s: %s (%s/%s): %d unroutable demands on a connected \
                       family"
                      path pctx pname policy failed;
                  let p50 = num "rounds_p50" in
                  let p99 = num "rounds_p99" in
                  let pmax = num "rounds_max" in
                  if not (p50 <= p99 && p99 <= pmax) then
                    fail
                      "%s: %s (%s/%s): percentiles not ordered (p50 %.0f, \
                       p99 %.0f, max %.0f)"
                      path pctx pname policy p50 p99 pmax;
                  let cmax = num "congestion_max" in
                  let ctot = num "congestion_total" in
                  if cmax > ctot then
                    fail
                      "%s: %s (%s/%s): congestion_max %.0f > total %.0f"
                      path pctx pname policy cmax ctot;
                  if num "demands_per_sec" <= 0. then
                    fail "%s: %s (%s/%s): demands_per_sec <= 0" path pctx
                      pname policy;
                  seen := ((pname, policy), (delivered, cmax)) :: !seen)
                ps;
              let get pp =
                match List.assoc_opt pp !seen with
                | Some v -> v
                | None ->
                    fail "%s: %s: missing %s/%s serve" path ctx (fst pp)
                      (snd pp)
              in
              List.iter
                (fun pname ->
                  let d_rr, cm_rr = get (pname, "round_robin") in
                  let d_ll, cm_ll = get (pname, "least_loaded") in
                  if d_rr <> d_ll then
                    fail
                      "%s: %s (%s): policies disagree on delivered (%d rr \
                       vs %d ll)"
                      path ctx pname d_rr d_ll;
                  (* least-loaded must never be materially worse than the
                     round-robin baseline on the same batch. The slack
                     absorbs epoch-snapshot herding: within an epoch every
                     task diverts against the same stale congestion, which
                     can overshoot on configs whose baseline is already
                     near the floor; the 2x win is gated separately at the
                     top rungs *)
                  if cm_ll > cm_rr *. 1.25 +. 1. then
                    fail
                      "%s: %s (%s): least-loaded congestion_max %.0f > \
                       round-robin %.0f"
                      path ctx pname cm_ll cm_rr)
                [ "random"; "hotspot" ];
              let _, cm_rr = get ("hotspot", "round_robin") in
              let _, cm_ll = get ("hotspot", "least_loaded") in
              let win = cm_rr /. Float.max 1. cm_ll in
              let cell =
                match Hashtbl.find_opt wins family with
                | Some c -> c
                | None ->
                    let c = ref [] in
                    Hashtbl.add wins family c;
                    c
              in
              cell := (n, win) :: !cell
          | _ ->
              fail "%s: %s.patterns must serve both workloads under both \
                    policies" path ctx);
          (match member "congest" e with
          | Some Json.Null -> ()
          | Some (Json.Obj _ as c) ->
              incr congest_checked;
              let cctx = Printf.sprintf "%s.congest" ctx in
              let rounds = decomp_num path cctx c "rounds" in
              let p50 = decomp_num path cctx c "rounds_p50" in
              let p99 = decomp_num path cctx c "rounds_p99" in
              if not (p50 <= p99 && p99 <= rounds) then
                fail
                  "%s: %s: completion rounds not ordered (p50 %.0f, p99 \
                   %.0f, last %.0f)"
                  path cctx p50 p99 rounds;
              (match member "planner_match" c with
              | Some (Json.Bool true) -> ()
              | Some (Json.Bool false) ->
                  fail
                    "%s: %s.planner_match is false — the simulator \
                     diverged from the planner"
                    path cctx
              | _ ->
                  fail "%s: %s.planner_match missing or not a bool" path cctx)
          | _ -> fail "%s: %s.congest missing (use null)" path ctx);
          (match Hashtbl.find_opt last_n (family, engine, reuse) with
          | Some prev when n <= prev ->
              fail
                "%s: %s: n = %d after n = %d for %s/%s/%s — ladder not \
                 monotone"
                path ctx n prev family engine
                (if reuse then "reuse" else "rebuild")
          | _ -> ());
          Hashtbl.replace last_n (family, engine, reuse) n)
        entries;
      if !congest_checked = 0 then
        fail
          "%s: no entry executed its plans on the simulator — at least one \
           rung must be small enough for the CONGEST side"
          path;
      (match require_congestion_win with
      | None -> ()
      | Some f ->
          Hashtbl.iter
            (fun family cell ->
              let top =
                List.fold_left (fun acc (n, _) -> max acc n) 0 !cell
              in
              let best =
                List.fold_left
                  (fun acc (n, w) -> if n = top then Float.max acc w else acc)
                  0. !cell
              in
              if best < f then
                fail
                  "%s: %s at n = %d: best hotspot congestion win %.2fx < \
                   required %.2fx"
                  path family top best f)
            wins);
      Printf.printf
        "%s: route-bench ok (%d entries, %d simulator-checked)\n" path
        (List.length entries) !congest_checked
  | _ -> fail "%s: results is not a list" path

let usage () =
  prerr_endline
    "usage: check_profile.exe --schema PROFILE [--trace TRACE]\n\
    \       check_profile.exe --compare A B\n\
    \       check_profile.exe --congest-bench BENCH\n\
    \       check_profile.exe --decomp-bench BENCH [--require-frontier]\n\
    \       check_profile.exe --route-bench BENCH \
     [--require-congestion-win F] [--require-jobs-speedup F]";
  exit 2

let () =
  match Array.to_list Sys.argv with
  | _ :: "--schema" :: profile :: rest ->
      (try
         check_schema profile;
         match rest with
         | [] -> ()
         | [ "--trace"; tr ] -> check_trace tr
         | _ -> usage ()
       with Bad msg ->
         prerr_endline msg;
         exit 1)
  | [ _; "--compare"; a; b ] ->
      (try compare_profiles a b
       with Bad msg ->
         prerr_endline msg;
         exit 1)
  | [ _; "--congest-bench"; bench ] ->
      (try check_congest_bench bench
       with Bad msg ->
         prerr_endline msg;
         exit 1)
  | _ :: "--route-bench" :: bench :: rest ->
      let rec flags win speedup = function
        | [] -> (win, speedup)
        | "--require-congestion-win" :: f :: tl ->
            (match float_of_string_opt f with
            | Some v -> flags (Some v) speedup tl
            | None -> usage ())
        | "--require-jobs-speedup" :: f :: tl ->
            (match float_of_string_opt f with
            | Some v -> flags win (Some v) tl
            | None -> usage ())
        | _ -> usage ()
      in
      let require_congestion_win, require_jobs_speedup =
        flags None None rest
      in
      (try
         check_route_bench bench ~require_congestion_win
           ~require_jobs_speedup
       with Bad msg ->
         prerr_endline msg;
         exit 1)
  | _ :: "--decomp-bench" :: bench :: rest ->
      let require_frontier =
        match rest with
        | [] -> false
        | [ "--require-frontier" ] -> true
        | _ -> usage ()
      in
      (try check_decomp_bench bench ~require_frontier
       with Bad msg ->
         prerr_endline msg;
         exit 1)
  | _ -> usage ()
