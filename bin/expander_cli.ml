(* Command-line driver: run the framework's decomposition and applications
   on generated networks from the shell.

     dune exec bin/expander_cli.exe -- decompose --family grid -n 256
     dune exec bin/expander_cli.exe -- mis --family apollonian -n 200 --eps 0.2
     dune exec bin/expander_cli.exe -- mcm --family planar -n 300
     dune exec bin/expander_cli.exe -- mwm --family grid -n 144 --max-w 50
     dune exec bin/expander_cli.exe -- correlation --family grid -n 100
     dune exec bin/expander_cli.exe -- test-property --property planar --far
     dune exec bin/expander_cli.exe -- ldd --family apollonian --eps 0.1 *)

open Sparse_graph
open Cmdliner

let make_graph family n seed =
  match family with
  | "grid" ->
      let side = max 2 (int_of_float (sqrt (float_of_int n))) in
      Generators.grid side side
  | "apollonian" -> Generators.random_apollonian (max 3 n) ~seed
  | "planar" -> Generators.random_planar (max 3 n) 0.7 ~seed
  | "tree" -> Generators.random_tree (max 1 n) ~seed
  | "outerplanar" -> Generators.random_maximal_outerplanar (max 3 n) ~seed
  | "ktree" -> Generators.random_k_tree (max 4 n) 3 ~seed
  | "hypercube" ->
      let d = max 1 (int_of_float (log (float_of_int (max 2 n)) /. log 2.)) in
      Generators.hypercube d
  | other -> failwith (Printf.sprintf "unknown family %S" other)

let family_arg =
  let doc =
    "Graph family: grid, apollonian, planar, tree, outerplanar, ktree, \
     hypercube."
  in
  Arg.(value & opt string "apollonian" & info [ "family"; "f" ] ~doc)

let n_arg =
  Arg.(value & opt int 200 & info [ "n" ] ~doc:"Number of vertices (approx).")

let eps_arg =
  Arg.(value & opt float 0.25 & info [ "eps"; "e" ] ~doc:"Epsilon parameter.")

let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Random seed.")

let simulate_arg =
  Arg.(
    value & flag
    & info [ "simulate" ]
        ~doc:
          "Run the communication phases on the CONGEST simulator (slower; \
           default charges the construction and skips simulation).")

let mode_of simulate = if simulate then Core.Pipeline.Simulated else Core.Pipeline.Charged

let report_pipeline (p : Core.Pipeline.t) =
  let r = p.report in
  Printf.printf
    "decomposition: k=%d clusters, inter-cluster %d edges (%.2f%%), phi=%.3e\n"
    r.k r.inter_edges (100. *. r.inter_fraction) r.phi;
  Printf.printf "charged construction rounds: %d\n"
    r.charged_construction_rounds;
  if r.simulated_rounds > 0 then
    Printf.printf "simulated communication rounds: %d\n" r.simulated_rounds

let save_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "save" ] ~doc:"Write the generated graph as an edge list to FILE.")

let dot_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "dot" ]
        ~doc:"Write a GraphViz rendering (clusters colored) to FILE.")

let distributed_arg =
  Arg.(
    value & flag
    & info [ "distributed" ]
        ~doc:
          "Use the fully distributed construction            (Distr.Distributed_decomposition) instead of the centralized            oracle.")

let engine_arg =
  Arg.(
    value
    & opt (enum [ ("spectral", Core.Pipeline.Spectral_engine);
                  ("cutmatching", Core.Pipeline.Cut_matching_engine) ])
        Core.Pipeline.Spectral_engine
    & info [ "engine" ]
        ~doc:
          "Decomposition engine: $(b,spectral) (Fiedler bipartitioning,            default) or $(b,cutmatching) (flow-based cut-matching game).")

let decompose_cmd =
  let run family n eps seed save dot distributed engine =
    let g = make_graph family n seed in
    Printf.printf "graph: %s n=%d m=%d\n" family (Graph.n g) (Graph.m g);
    let labels, k, inter, tau =
      if distributed then begin
        let d = Distr.Distributed_decomposition.decompose g ~epsilon:eps in
        Printf.printf
          "distributed construction: %d levels, %d simulated rounds, max            %d bits/edge/round\n"
          d.levels d.total_rounds d.max_edge_bits;
        (d.labels, d.k, List.length d.inter_edges, d.tau)
      end
      else begin
        let d =
          match engine with
          | Core.Pipeline.Spectral_engine ->
              Spectral.Expander_decomposition.decompose g ~epsilon:eps
          | Core.Pipeline.Cut_matching_engine ->
              let d, st = Flow.Decomp_engine.decompose g ~epsilon:eps in
              Printf.printf
                "cut-matching: %d games, %d rounds, %d flow calls, %d heuristic cuts\n"
                st.Flow.Decomp_engine.games st.Flow.Decomp_engine.game_rounds
                st.Flow.Decomp_engine.flow_calls
                st.Flow.Decomp_engine.heuristic_cuts;
              d
        in
        let _, worst = Spectral.Expander_decomposition.verify g d in
        Printf.printf "measured min cluster conductance: %.4f\n" worst;
        (d.labels, d.k, List.length d.inter_edges, d.tau)
      end
    in
    Printf.printf "clusters: %d, inter-cluster edges: %d / %d (%.2f%%)\n" k
      inter (Graph.m g)
      (100. *. float_of_int inter /. float_of_int (max 1 (Graph.m g)));
    Printf.printf "conductance threshold tau = %.3e\n" tau;
    Option.iter
      (fun path ->
        Graph_io.save g ~path;
        Printf.printf "edge list written to %s\n" path)
      save;
    Option.iter
      (fun path ->
        let oc = open_out path in
        output_string oc (Graph_io.to_dot ~labels g);
        close_out oc;
        Printf.printf "dot rendering written to %s\n" path)
      dot
  in
  Cmd.v (Cmd.info "decompose" ~doc:"Run the (eps, phi) expander decomposition.")
    Term.(
      const run $ family_arg $ n_arg $ eps_arg $ seed_arg $ save_arg $ dot_arg
      $ distributed_arg $ engine_arg)

let mis_cmd =
  let run family n eps seed simulate =
    let g = make_graph family n seed in
    Printf.printf "graph: %s n=%d m=%d\n" family (Graph.n g) (Graph.m g);
    let r = Core.App_mis.run ~mode:(mode_of simulate) g ~epsilon:eps ~seed in
    report_pipeline r.pipeline;
    Printf.printf "independent set: %d vertices (|Z| = %d conflicts removed)\n"
      r.size r.conflicts_removed;
    if Graph.n g <= 300 then
      let opt = Optimize.Mis.exact_size g in
      Printf.printf "exact optimum: %d, ratio %.3f (target %.3f)\n" opt
        (Core.App_mis.ratio r ~opt)
        (1. -. eps)
  in
  Cmd.v
    (Cmd.info "mis" ~doc:"(1-eps)-approximate maximum independent set (Thm 1.2).")
    Term.(const run $ family_arg $ n_arg $ eps_arg $ seed_arg $ simulate_arg)

let mcm_cmd =
  let run family n eps seed simulate =
    let g = make_graph family n seed in
    Printf.printf "graph: %s n=%d m=%d\n" family (Graph.n g) (Graph.m g);
    let r = Core.App_matching.mcm_planar ~mode:(mode_of simulate) g ~epsilon:eps ~seed in
    (match r.pipeline with Some p -> report_pipeline p | None -> ());
    let opt = Matching.Blossom.size (Matching.Blossom.max_cardinality_matching g) in
    Printf.printf "matching: %d edges; optimum %d; ratio %.3f (target %.3f)\n"
      r.size opt
      (if opt = 0 then 1. else float_of_int r.size /. float_of_int opt)
      (1. -. eps)
  in
  Cmd.v
    (Cmd.info "mcm" ~doc:"(1-eps)-approximate planar maximum matching (Thm 3.2).")
    Term.(const run $ family_arg $ n_arg $ eps_arg $ seed_arg $ simulate_arg)

let max_w_arg =
  Arg.(value & opt int 64 & info [ "max-w" ] ~doc:"Maximum edge weight W.")

let mwm_cmd =
  let run family n eps seed simulate max_w =
    let g = make_graph family n seed in
    let w = Weights.random g ~max_w ~seed in
    Printf.printf "graph: %s n=%d m=%d W=%d\n" family (Graph.n g) (Graph.m g) max_w;
    let r = Core.App_matching.mwm ~mode:(mode_of simulate) g w ~epsilon:eps ~seed in
    (match r.pipeline with Some p -> report_pipeline p | None -> ());
    let greedy = Matching.Approx.weight g w (Matching.Approx.greedy g w) in
    Printf.printf "framework MWM weight: %d (greedy baseline %d; OPT <= %d)\n"
      r.weight greedy (2 * greedy)
  in
  Cmd.v
    (Cmd.info "mwm" ~doc:"(1-eps)-approximate maximum weight matching (Thm 1.1).")
    Term.(
      const run $ family_arg $ n_arg $ eps_arg $ seed_arg $ simulate_arg
      $ max_w_arg)

let correlation_cmd =
  let run family n eps seed simulate =
    let g = make_graph family n seed in
    let communities = Array.init (Graph.n g) (fun v -> v mod 3) in
    let labels = Generators.planted_sign_labels g communities ~noise:0.1 ~seed in
    Printf.printf "graph: %s n=%d m=%d (planted labels, 10%% noise)\n" family
      (Graph.n g) (Graph.m g);
    let r =
      Core.App_correlation.run ~mode:(mode_of simulate) g ~labels ~epsilon:eps
        ~seed
    in
    report_pipeline r.pipeline;
    Printf.printf "agreement score: %d / %d edges (trivial bound %d)\n" r.score
      (Graph.m g)
      (Core.App_correlation.trivial_bound g)
  in
  Cmd.v
    (Cmd.info "correlation"
       ~doc:"(1-eps)-approximate correlation clustering (Thm 1.3).")
    Term.(const run $ family_arg $ n_arg $ eps_arg $ seed_arg $ simulate_arg)

let property_arg =
  let doc = "Property: planar, forest, outerplanar, series-parallel, linear-forest." in
  Arg.(value & opt string "planar" & info [ "property"; "p" ] ~doc)

let far_arg =
  Arg.(value & flag & info [ "far" ] ~doc:"Corrupt the input to be eps-far.")

let test_property_cmd =
  let run family n eps seed property far =
    let prop =
      match
        List.find_opt
          (fun (p : Minorfree.Properties.t) -> p.name = property)
          Minorfree.Properties.all
      with
      | Some p -> p
      | None -> failwith (Printf.sprintf "unknown property %S" property)
    in
    let g = make_graph family n seed in
    let g =
      if far then
        Generators.plant_k5s g
          (min (Graph.n g / 5) (1 + (Graph.m g / 8)))
          ~seed
      else g
    in
    Printf.printf "graph: %s n=%d m=%d (%s)\n" family (Graph.n g) (Graph.m g)
      (if far then "corrupted" else "as generated");
    let v = Core.App_property.run ~mode:Core.Pipeline.Charged g prop ~epsilon:eps ~seed in
    Printf.printf "property %S: %s\n" prop.name
      (if v.accepted then "ACCEPT (all vertices)"
       else
         Printf.sprintf "REJECT (%d rejecting clusters)"
           (List.length v.rejecting_clusters))
  in
  Cmd.v
    (Cmd.info "test-property"
       ~doc:"Distributed property testing for minor-closed properties (Thm 1.4).")
    Term.(
      const run $ family_arg $ n_arg $ eps_arg $ seed_arg $ property_arg
      $ far_arg)

let dominating_cmd =
  let run family n eps seed simulate =
    let g = make_graph family n seed in
    Printf.printf "graph: %s n=%d m=%d\n" family (Graph.n g) (Graph.m g);
    let r =
      Core.App_covering.dominating_set ~mode:(mode_of simulate) g ~epsilon:eps
        ~seed
    in
    report_pipeline r.pipeline;
    Printf.printf "dominating set: %d vertices (valid: %b)\n" r.size
      (Optimize.Dominating.is_dominating g r.solution);
    if Graph.n g <= 100 then
      Printf.printf "exact optimum: %d\n" (Optimize.Dominating.exact_size g)
  in
  Cmd.v
    (Cmd.info "dominating"
       ~doc:"Minimum dominating set through the framework (extension).")
    Term.(const run $ family_arg $ n_arg $ eps_arg $ seed_arg $ simulate_arg)

let vertex_cover_cmd =
  let run family n eps seed simulate =
    let g = make_graph family n seed in
    Printf.printf "graph: %s n=%d m=%d\n" family (Graph.n g) (Graph.m g);
    let r =
      Core.App_covering.vertex_cover ~mode:(mode_of simulate) g ~epsilon:eps
        ~seed
    in
    report_pipeline r.pipeline;
    Printf.printf "vertex cover: %d vertices (valid: %b)\n" r.size
      (Optimize.Vertex_cover.is_cover g r.solution);
    if Graph.n g <= 300 then
      Printf.printf "exact optimum: %d\n" (Optimize.Vertex_cover.exact_size g)
  in
  Cmd.v
    (Cmd.info "vertex-cover"
       ~doc:"Minimum vertex cover through the framework (extension).")
    Term.(const run $ family_arg $ n_arg $ eps_arg $ seed_arg $ simulate_arg)

let weighted_mis_cmd =
  let run family n eps seed simulate max_w =
    let g = make_graph family n seed in
    let st = Random.State.make [| seed; 31337 |] in
    let weights = Array.init (Graph.n g) (fun _ -> 1 + Random.State.int st max_w) in
    Printf.printf "graph: %s n=%d m=%d, vertex weights in [1, %d]\n" family
      (Graph.n g) (Graph.m g) max_w;
    let r =
      Core.App_mis.run_weighted ~mode:(mode_of simulate) g ~weights
        ~epsilon:eps ~seed
    in
    report_pipeline r.w_pipeline;
    Printf.printf "weighted independent set: total weight %d (%d vertices)\n"
      r.total_weight
      (List.length r.w_independent_set);
    if Graph.n g <= 120 then
      Printf.printf "exact optimum: %d\n"
        (Optimize.Mis.weight_of weights (Optimize.Mis.exact_weighted g weights))
  in
  Cmd.v
    (Cmd.info "weighted-mis"
       ~doc:"Weighted maximum independent set through the framework (extension).")
    Term.(
      const run $ family_arg $ n_arg $ eps_arg $ seed_arg $ simulate_arg
      $ max_w_arg)

let ldd_cmd =
  let run family n eps seed simulate =
    let g = make_graph family n seed in
    Printf.printf "graph: %s n=%d m=%d\n" family (Graph.n g) (Graph.m g);
    let r = Core.App_ldd.run ~mode:(mode_of simulate) g ~epsilon:eps ~seed in
    report_pipeline r.pipeline;
    Printf.printf
      "low-diameter decomposition: %d clusters, max diameter %d, cut %.2f%% \
       (budget %.2f%%)\n"
      r.partition.k r.max_diameter
      (100. *. r.cut_fraction)
      (100. *. eps)
  in
  Cmd.v
    (Cmd.info "ldd" ~doc:"Low-diameter decomposition with D = O(1/eps) (Thm 1.5).")
    Term.(const run $ family_arg $ n_arg $ eps_arg $ seed_arg $ simulate_arg)

let () =
  let doc =
    "Expander-decomposition framework for CONGEST algorithms on sparse \
     networks (Chang & Su, PODC 2022)."
  in
  let info = Cmd.info "expander-congest" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            decompose_cmd; mis_cmd; mcm_cmd; mwm_cmd; correlation_cmd;
            test_property_cmd; ldd_cmd; dominating_cmd; vertex_cover_cmd;
            weighted_mis_cmd;
          ]))
