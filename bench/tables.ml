(* Aligned ASCII tables for the experiment harness. *)

let print_table ~title ~header rows =
  Printf.printf "\n== %s ==\n" title;
  let all = header :: rows in
  let cols = List.length header in
  let width c =
    List.fold_left (fun acc row -> max acc (String.length (List.nth row c))) 0 all
  in
  let widths = List.init cols width in
  let print_row row =
    List.iteri
      (fun c cell -> Printf.printf "%-*s  " (List.nth widths c) cell)
      row;
    print_newline ()
  in
  print_row header;
  print_row (List.map (fun w -> String.make w '-') widths);
  List.iter print_row rows

let f1 x = Printf.sprintf "%.1f" x
let f2 x = Printf.sprintf "%.2f" x
let f3 x = Printf.sprintf "%.3f" x
let f4 x = Printf.sprintf "%.4f" x
let pct x = Printf.sprintf "%.1f%%" (100. *. x)
let i = string_of_int

let note fmt = Printf.printf fmt
