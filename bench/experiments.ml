(* Experiments E1-E9: one printed table per theorem-level claim of the paper.
   See DESIGN.md section 3 for the experiment index and EXPERIMENTS.md for
   recorded paper-vs-measured results. *)

open Sparse_graph
open Tables

let charged = Core.Pipeline.Charged

(* Worker pool for the grid points inside each experiment; bench/main.ml
   sets it from --jobs / EXPANDER_JOBS. *)
let pool = ref Parallel.Pool.sequential

(* [grid tasks f] computes each independent grid point on the pool and
   concatenates the returned row groups in task order, so every table is
   byte-identical to a sequential run at any --jobs value. *)
let grid tasks f = List.concat (Parallel.Pool.map_list !pool f tasks)

let cartesian xs ys = List.concat_map (fun x -> List.map (fun y -> (x, y)) ys) xs

(* ------------------------------------------------------------------ *)
(* E1 - Theorem 1.2: (1 - eps)-approximate MaxIS                        *)
(* ------------------------------------------------------------------ *)

let mis_reference g =
  (* exact optimum when feasible; otherwise the matching upper bound
     alpha <= n - mu(G) *)
  if Graph.n g <= 400 then (Optimize.Mis.exact_size g, "exact")
  else begin
    let mu = Matching.Blossom.size (Matching.Blossom.max_cardinality_matching g) in
    (Graph.n g - mu, "n-mu UB")
  end

let e1 () =
  note "\n### E1 (Theorem 1.2): (1-eps)-approximate maximum independent set\n";
  note "claim: ratio >= 1 - eps on H-minor-free networks, poly(log n, 1/eps) rounds\n";
  let rows =
    grid
      (cartesian (Workloads.families ~seed:11) [ 100; 256 ])
      (fun ((fname, gen), n) ->
        let g = gen n in
        let opt, kind = mis_reference g in
        List.map
          (fun eps ->
            let r =
              Core.App_mis.run ~mode:charged ~exact_limit:400 g ~epsilon:eps
                ~seed:1
            in
            let p = r.pipeline.report in
            [
              fname; i (Graph.n g); f2 eps; i p.k; pct p.inter_fraction;
              i r.size;
              Printf.sprintf "%d (%s)" opt kind;
              f3 (float_of_int r.size /. float_of_int opt);
              f3 (1. -. eps);
            ])
          [ 0.5; 0.25; 0.1 ])
  in
  print_table ~title:"E1: MaxIS approximation"
    ~header:
      [ "family"; "n"; "eps"; "k"; "inter"; "size"; "reference"; "ratio";
        "target" ]
    rows

(* ------------------------------------------------------------------ *)
(* E2 - Theorem 3.2: (1 - eps)-approximate MCM on planar graphs         *)
(* ------------------------------------------------------------------ *)

let e2 () =
  note "\n### E2 (Theorem 3.2): (1-eps)-approximate planar maximum matching\n";
  note "claim: preprocessing (Lemma 3.1) makes OPT = Omega(n); union of per-cluster\n";
  note "blossom solutions achieves 1 - eps; ablation: preprocessing off\n";
  let instance name g = (name, g) in
  let instances =
    [
      instance "grid" (Workloads.grid_of 256);
      instance "apollonian" (Generators.random_apollonian 256 ~seed:3);
      instance "planar+stars"
        (Generators.attach_double_stars
           (Generators.attach_stars
              (Generators.random_planar 180 0.65 ~seed:4)
              ~stars:12 ~leaves:6 ~seed:4)
           ~hubs:6 ~spokes:5 ~seed:4);
      instance "blob-chain"
        (Generators.blob_chain ~blobs:24 ~blob_size:13 ~seed:4);
      instance "tree" (Generators.random_tree 256 ~seed:4);
    ]
  in
  (* ablation: same pipeline without the Lemma 3.1 preprocessing *)
  let mcm_no_preprocess g eps seed =
    let pipeline = Core.Pipeline.prepare ~mode:charged g ~epsilon:(0.25 *. eps) ~seed in
    let n = Graph.n g in
    let mate = Array.make n (-1) in
    Array.iter
      (fun (cl : Core.Pipeline.cluster) ->
        let local = Matching.Blossom.max_cardinality_matching cl.sub in
        Array.iteri
          (fun v m ->
            if m > v then begin
              let ov = cl.mapping.to_orig.(v) and om = cl.mapping.to_orig.(m) in
              mate.(ov) <- om;
              mate.(om) <- ov
            end)
          local)
      pipeline.clusters;
    Array.fold_left (fun acc m -> if m >= 0 then acc + 1 else acc) 0 mate / 2
  in
  let rows =
    grid instances (fun (name, g) ->
        let opt =
          Matching.Blossom.size (Matching.Blossom.max_cardinality_matching g)
        in
        List.map
          (fun eps ->
            let r = Core.App_matching.mcm_planar ~mode:charged g ~epsilon:eps ~seed:5 in
            let without = mcm_no_preprocess g eps 5 in
            [
              name; i (Graph.n g); f2 eps; i opt; i r.size;
              f3 (float_of_int r.size /. float_of_int (max 1 opt));
              f3 (1. -. eps);
              i without;
              f3 (float_of_int without /. float_of_int (max 1 opt));
            ])
          [ 0.4; 0.2; 0.1 ])
  in
  print_table ~title:"E2: planar MCM (with preprocessing ablation)"
    ~header:
      [ "graph"; "n"; "eps"; "opt"; "size"; "ratio"; "target"; "no-prep";
        "no-prep ratio" ]
    rows

(* ------------------------------------------------------------------ *)
(* E3 - Theorem 1.1: (1 - eps)-approximate MWM                          *)
(* ------------------------------------------------------------------ *)

let e3 () =
  note "\n### E3 (Theorem 1.1): (1-eps)-approximate maximum weight matching\n";
  note "claim: the scaling pipeline beats the 1/2-approx baselines and approaches\n";
  note "the optimum; exact ratios are measured on subset-DP-sized instances\n";
  (* small instances: exact ratio *)
  let small_rows =
    grid [ 0; 1; 2 ] (fun seed ->
        let g =
          Generators.add_random_edges (Generators.random_tree 14 ~seed) 9 ~seed
        in
        let w = Weights.random g ~max_w:50 ~seed in
        let opt = Matching.Exact_small.max_weight_matching g w in
        List.map
          (fun eps ->
            let r = Core.App_matching.mwm ~mode:charged g w ~epsilon:eps ~seed in
            [
              Printf.sprintf "random(seed=%d)" seed; i (Graph.n g); f2 eps;
              i opt; i r.weight;
              f3 (float_of_int r.weight /. float_of_int opt);
              f3 (1. -. eps);
            ])
          [ 0.3; 0.1 ])
  in
  print_table ~title:"E3a: MWM exact ratios (small instances)"
    ~header:[ "graph"; "n"; "eps"; "opt"; "weight"; "ratio"; "target" ]
    small_rows;
  (* larger instances: vs baselines, with the greedy certificate OPT <= 2G *)
  let rows =
    grid
      (cartesian
         [ ("grid", Workloads.grid_of);
           ("apollonian", fun n -> Generators.random_apollonian n ~seed:8) ]
         [ 8; 64 ])
      (fun ((name, gen), max_w) ->
        let g = gen 256 in
        let w = Weights.random g ~max_w ~seed:7 in
        let r = Core.App_matching.mwm ~mode:charged g w ~epsilon:0.2 ~seed:7 in
        let greedy = Matching.Approx.weight g w (Matching.Approx.greedy g w) in
        let pg =
          Matching.Approx.weight g w (Matching.Approx.path_growing g w)
        in
        [
          [
            name; i (Graph.n g); i max_w; i r.weight; i greedy; i pg;
            f3 (float_of_int r.weight /. float_of_int greedy);
            f3 (float_of_int r.weight /. float_of_int (2 * greedy));
          ];
        ])
  in
  print_table ~title:"E3b: MWM vs distributed baselines (W sweep)"
    ~header:
      [ "family"; "n"; "W"; "framework"; "greedy"; "path-grow"; "vs greedy";
        "certified ratio" ]
    rows

(* ------------------------------------------------------------------ *)
(* E4 - Theorem 1.3: correlation clustering                             *)
(* ------------------------------------------------------------------ *)

let e4 () =
  note "\n### E4 (Theorem 1.3): (1-eps)-approximate correlation clustering\n";
  note "claim: score >= (1 - eps) gamma(G) with gamma >= m/2; planted labels with\n";
  note "noise are recovered near the ground truth\n";
  (* exact ratios on small instances *)
  let small_rows =
    grid [ 0; 1; 2; 3 ] (fun seed ->
        let g =
          Generators.add_random_edges (Generators.random_tree 13 ~seed) 9 ~seed
        in
        let labels = Generators.random_sign_labels g ~frac_pos:0.55 ~seed in
        let opt = Optimize.Correlation.exact_score g labels in
        let r = Core.App_correlation.run ~mode:charged g ~labels ~epsilon:0.2 ~seed in
        [
          [
            Printf.sprintf "random(seed=%d)" seed; i (Graph.n g); i opt;
            i r.score;
            f3 (float_of_int r.score /. float_of_int opt);
          ];
        ])
  in
  print_table ~title:"E4a: correlation clustering exact ratios (small)"
    ~header:[ "graph"; "n"; "opt"; "score"; "ratio" ]
    small_rows;
  let rows =
    grid
      (cartesian
         [
           ("grid", Workloads.grid_of 400);
           ("apollonian", Generators.random_apollonian 300 ~seed:10);
         ]
         [ 0.0; 0.1; 0.3 ])
      (fun ((name, g), noise) ->
        let communities, labels =
          Workloads.planted_correlation g ~communities_count:4 ~noise ~seed:9
        in
        let r = Core.App_correlation.run ~mode:charged g ~labels ~epsilon:0.2 ~seed:9 in
        let planted = Optimize.Correlation.score g labels communities in
        [
          [
            name; i (Graph.n g); f2 noise; i (Graph.m g); i r.score;
            i planted;
            pct (float_of_int r.score /. float_of_int (Graph.m g));
            pct (float_of_int r.score /. float_of_int (max 1 planted));
          ];
        ])
  in
  print_table ~title:"E4b: correlation clustering, planted labels"
    ~header:
      [ "family"; "n"; "noise"; "m"; "score"; "planted"; "score/m";
        "vs planted" ]
    rows

(* ------------------------------------------------------------------ *)
(* E5 - Theorem 1.4: property testing                                   *)
(* ------------------------------------------------------------------ *)

let e5 () =
  note "\n### E5 (Theorem 1.4): distributed property testing\n";
  note "claim: one-sided error - members always accepted; eps-far inputs rejected\n";
  let eps = 0.15 in
  let seeds = [ 0; 1; 2; 3; 4 ] in
  let member_of (p : Minorfree.Properties.t) seed =
    match p.name with
    | "planar" -> Generators.random_apollonian 240 ~seed
    | "forest" -> Generators.random_tree 240 ~seed
    | "outerplanar" -> Generators.random_maximal_outerplanar 240 ~seed
    | "series-parallel" -> Generators.random_k_tree 240 2 ~seed
    | _ -> Generators.path 240
  in
  let far_of (p : Minorfree.Properties.t) seed =
    (* add enough random edges that the structural edit bound certifies
       eps-farness *)
    let base = member_of p seed in
    let rec densify extra =
      let g = Generators.add_random_edges base extra ~seed in
      if Minorfree.Properties.far_from ~epsilon:eps g p then g
      else densify (extra * 2)
    in
    densify (max 16 (Graph.m base / 4))
  in
  let rows =
    grid
      [
        Minorfree.Properties.planar; Minorfree.Properties.forest;
        Minorfree.Properties.outerplanar; Minorfree.Properties.series_parallel;
      ]
      (fun (p : Minorfree.Properties.t) ->
        let accept_members =
          List.length
            (List.filter
               (fun seed ->
                 (Core.App_property.run ~mode:charged (member_of p seed) p
                    ~epsilon:eps ~seed)
                   .accepted)
               seeds)
        in
        let reject_far =
          List.length
            (List.filter
               (fun seed ->
                 not
                   (Core.App_property.run ~mode:charged (far_of p seed) p
                      ~epsilon:eps ~seed)
                     .accepted)
               seeds)
        in
        [
          [
            p.name;
            Printf.sprintf "K_%d" p.forbidden_clique;
            Printf.sprintf "%d/%d" accept_members (List.length seeds);
            Printf.sprintf "%d/%d" reject_far (List.length seeds);
          ];
        ])
  in
  print_table ~title:"E5: property testing accept/reject (eps = 0.15)"
    ~header:[ "property"; "forbidden"; "members accepted"; "far rejected" ]
    rows

(* ------------------------------------------------------------------ *)
(* E6 - Theorem 1.5: low-diameter decomposition D = O(1/eps)            *)
(* ------------------------------------------------------------------ *)

let e6 () =
  note "\n### E6 (Theorem 1.5): low-diameter decomposition with D = O(1/eps)\n";
  note "claim: D grows linearly in 1/eps (D*eps roughly constant), cut <= eps*m;\n";
  note "ablation: MPX random shifts carry an extra log n factor\n";
  let rows =
    grid
      (cartesian
         [
           ("grid", Workloads.grid_of 1024);
           ("apollonian", Generators.random_apollonian 800 ~seed:14);
           ("k-tree(3)", Generators.random_k_tree 600 3 ~seed:15);
           ("tree", Generators.random_tree 800 ~seed:16);
         ]
         [ 0.5; 0.25; 0.125; 0.0625 ])
      (fun ((name, g), eps) ->
        let r = Core.App_ldd.run ~mode:charged g ~epsilon:eps ~seed:13 in
        let mpx = Decomp.Ldd.mpx g ~beta:(eps /. 2.) ~seed:13 in
        let mpx_d = Decomp.Partition.max_cluster_diameter g mpx in
        let rg = Decomp.Ldd.region_growing g ~epsilon:eps in
        let rg_d = Decomp.Partition.max_cluster_diameter g rg in
        [
          [
            name; i (Graph.n g); f3 eps; i r.max_diameter;
            f2 (float_of_int r.max_diameter *. eps);
            pct r.cut_fraction; pct eps;
            i mpx_d; i rg_d;
          ];
        ])
  in
  print_table ~title:"E6: LDD diameter vs 1/eps (KPR in-framework; MPX, region-growing ablations)"
    ~header:
      [ "family"; "n"; "eps"; "D"; "D*eps"; "cut"; "budget"; "D(mpx)";
        "D(region)" ]
    rows

(* ------------------------------------------------------------------ *)
(* E7 - Theorem 1.6 + Lemma 2.3: separators and high-degree vertices    *)
(* ------------------------------------------------------------------ *)

let e7 () =
  note "\n### E7 (Theorem 1.6 + Lemma 2.3): edge separators and high-degree leaders\n";
  note "claim: minor-free families have balanced separators of size O(sqrt(Delta n))\n";
  note "(bounded ratio); contrast families (hypercube, random regular) blow up\n";
  let rows =
    grid
      (cartesian (Workloads.families_with_contrast ~seed:18) [ 256; 1024 ])
      (fun ((name, gen), n) ->
        let g = gen n in
        if Graph.n g >= 6 then begin
          let cut = Decomp.Edge_separator.best g ~seed:17 in
          [
            [
              name; i (Graph.n g); i (Graph.m g);
              i (Graph.max_degree g); i cut.crossing;
              f2 (sqrt (float_of_int (Graph.max_degree g * Graph.n g)));
              f2 (Decomp.Edge_separator.quality g cut);
            ];
          ]
        end
        else [])
  in
  print_table ~title:"E7a: balanced edge separator sizes"
    ~header:
      [ "family"; "n"; "m"; "Delta"; "|dS|"; "sqrt(Delta*n)"; "ratio" ]
    rows;
  (* Lemma 2.3: max cluster degree vs phi^2 |V_i| *)
  let rows2 =
    grid (Workloads.families ~seed:19) (fun (name, gen) ->
      let g = gen 512 in
      let d = Spectral.Expander_decomposition.decompose g ~epsilon:0.4 in
      let clusters = Spectral.Expander_decomposition.clusters g d in
      let worst_slack = ref infinity in
      let worst_ratio = ref infinity in
      Array.iter
        (fun (vs, sub, _) ->
          let ni = List.length vs in
          if ni >= 2 && Graph.m sub > 0 then begin
            let delta_i = float_of_int (Graph.max_degree sub) in
            let slack = delta_i /. (d.phi *. d.phi *. float_of_int ni) in
            let ratio = delta_i /. float_of_int ni in
            if slack < !worst_slack then worst_slack := slack;
            if ratio < !worst_ratio then worst_ratio := ratio
          end)
        clusters;
      [
        [
          name; i d.k; Printf.sprintf "%.1e" d.phi;
          (if !worst_ratio = infinity then "-" else f4 !worst_ratio);
          (if !worst_slack = infinity then "-"
           else Printf.sprintf "%.1e" !worst_slack);
        ];
      ])
  in
  print_table
    ~title:"E7b: Lemma 2.3 high-degree condition (slack = min Delta_i / (phi^2 |V_i|) >> 1)"
    ~header:[ "family"; "k"; "phi"; "min Delta_i/|V_i|"; "slack" ]
    rows2

(* ------------------------------------------------------------------ *)
(* E8 - Theorems 2.1 / 2.6: decomposition quality and round scaling     *)
(* ------------------------------------------------------------------ *)

let e8 () =
  note "\n### E8 (Theorems 2.1/2.6): decomposition quality and CONGEST rounds\n";
  note "claim: inter-cluster <= eps*m; cluster conductance >= phi; charged rounds\n";
  note "scale polylogarithmically (flat charged/log^3 n column); simulated rounds\n";
  note "for small n; ablation: BFS-ball clustering has no conductance floor\n";
  let rows =
    grid
      (cartesian
         [
           ("grid", Workloads.grid_of, 0.5);
           ("tree", (fun n -> Generators.random_tree n ~seed:21), 0.3);
           ("apollonian", (fun n -> Generators.random_apollonian n ~seed:22), 0.3);
         ]
         [ 64; 256; 1024; 4096 ])
      (fun ((name, gen, eps), n) ->
        let g = gen n in
        let real_n = Graph.n g in
        let d = Spectral.Expander_decomposition.decompose g ~epsilon:eps in
        let _, worst = Spectral.Expander_decomposition.verify g d in
        let charged = Core.Pipeline.construction_charge ~n:real_n ~epsilon:eps in
        let logn = log (float_of_int (max 2 real_n)) /. log 2. in
        let simulated =
          if real_n <= 150 then begin
            let p = Core.Pipeline.prepare ~mode:Core.Pipeline.Simulated g ~epsilon:eps ~seed:20 in
            i p.report.simulated_rounds
          end
          else "-"
        in
        (* ablation: BFS balls of comparable cluster count *)
        let bfs = Spectral.Expander_decomposition.bfs_ball_baseline g ~radius:3 in
        let _, bfs_worst =
          Spectral.Expander_decomposition.verify g
            { bfs with epsilon = 1.0 }
        in
        let det =
          Core.Pipeline.construction_charge_deterministic ~n:real_n
            ~epsilon:eps
        in
        [
          [
            name; i real_n; f2 eps; i d.k;
            pct (Spectral.Expander_decomposition.inter_fraction g d);
            Printf.sprintf "%.1e" d.phi; f4 worst;
            i charged; f1 (float_of_int charged /. (logn ** 3.));
            i det; simulated; f4 bfs_worst;
          ];
        ])
  in
  print_table ~title:"E8: decomposition + rounds scaling"
    ~header:
      [ "family"; "n"; "eps"; "k"; "inter"; "phi"; "min cond"; "charged";
        "charged/log^3"; "det charge"; "simulated"; "bfs-ball cond" ]
    rows

(* ------------------------------------------------------------------ *)
(* E9 - Lemma 2.4: random-walk routing                                  *)
(* ------------------------------------------------------------------ *)

let e9 () =
  note "\n### E9 (Lemma 2.4): random-walk routing to the leader\n";
  note "claim: delivery reaches 100%% once the walk budget passes the mixing-time\n";
  note "scale; per-edge congestion stays at O(log n) words per round;\n";
  note "ablation: a random (low-degree) leader needs longer walks\n";
  let g = Generators.random_apollonian 96 ~seed:23 in
  let view = Distr.Cluster_view.whole g in
  let election = Distr.Leader_election.run view ~rounds:(Graph.n g) in
  let max_leader = election.leader_of in
  (* ablation leader: vertex 0 regardless of degree *)
  let fixed_leader = Array.make (Graph.n g) 0 in
  let rows =
    grid [ 4; 16; 64; 256; 1024 ] (fun walk_len ->
        let run leader_of =
          Distr.Walk_routing.run view ~leader_of
            ~tokens_of:(fun _ -> 2)
            ~walk_len ~seed:24 ~max_rounds:(walk_len * 60)
        in
        let r_max = run max_leader in
        let r_fixed = run fixed_leader in
        let rate r =
          Distr.Walk_routing.delivery_rate view ~tokens_of:(fun _ -> 2) r
        in
        (* deterministic tree pipelining (Lemma 2.5 stand-in) for contrast *)
        let det =
          Distr.Tree_routing.run view ~leader_of:max_leader
            ~tokens_of:(fun _ -> 2)
            ~max_rounds:4000
        in
        [
          [
            i walk_len;
            pct (rate r_max);
            i r_max.stats.Congest.Network.last_traffic_round;
            i r_max.stats.Congest.Network.max_edge_bits;
            pct (rate r_fixed);
            i det.stats.Congest.Network.last_traffic_round;
          ];
        ])
  in
  print_table
    ~title:
      (Printf.sprintf
         "E9: walk routing on apollonian n=%d (leader deg %d; ablation leader deg %d)"
         (Graph.n g)
         (Graph.degree g max_leader.(0))
         (Graph.degree g 0))
    ~header:
      [ "walk budget"; "delivered"; "rounds"; "max edge bits";
        "delivered (low-deg leader)"; "det-tree rounds" ]
    rows

(* ------------------------------------------------------------------ *)
(* E10 - Section 2: mixing time vs conductance                          *)
(* ------------------------------------------------------------------ *)

let e10 () =
  note "\n### E10 (Section 2): Theta(1/Phi) <= tau_mix <= Theta(log n / Phi^2)\n";
  note "claim: the Jerrum-Sinclair sandwich holds for the lazy walk; expanders\n";
  note "mix in O(log n), cycles and paths in Theta(n^2)\n";
  let rows =
    grid
      [
      ("complete K12", Generators.complete 12);
      ("complete K32", Generators.complete 32);
      ("hypercube Q6", Generators.hypercube 6);
      ("grid 8x8", Generators.grid 8 8);
      ("grid 12x12", Generators.grid 12 12);
      ("cycle 32", Generators.cycle 32);
      ("cycle 64", Generators.cycle 64);
      ("path 48", Generators.path 48);
      ("apollonian 64", Generators.random_apollonian 64 ~seed:26);
      ("barbell 8+2", Generators.barbell 8 2);
      ]
      (fun (name, g) ->
        let phi =
          if Graph.n g <= 14 then Spectral.Conductance.exact g
          else
            (Spectral.Sweep_cut.combined_cut g ~iters:400 ~seed:25).conductance
        in
        match Spectral.Random_walk.mixing_time g ~max_t:200_000 with
        | None -> []
        | Some tmix ->
            let n = float_of_int (Graph.n g) in
            let lower = 1. /. phi in
            let upper = log n /. (phi *. phi) in
            [
              [
                name; i (Graph.n g); f4 phi; i tmix;
                f2 (float_of_int tmix /. lower);
                f3 (float_of_int tmix /. upper);
              ];
            ])
  in
  print_table
    ~title:"E10: mixing time sandwich (tmix/(1/Phi) >= c, tmix/(log n/Phi^2) <= C)"
    ~header:[ "graph"; "n"; "Phi"; "tau_mix"; "vs 1/Phi"; "vs log n/Phi^2" ]
    rows

(* ------------------------------------------------------------------ *)
(* E11 - the LOCAL-CONGEST gap itself: gathering cost comparison        *)
(* ------------------------------------------------------------------ *)

let e11 () =
  note "\n### E11 (the title claim): LOCAL vs CONGEST topology gathering\n";
  note "claim: the LOCAL baseline (BFS convergecast) needs few rounds but\n";
  note "Theta(|E_i| log n)-bit messages; Lemma 2.4 random-walk routing stays\n";
  note "within the O(log n)-bit CONGEST budget at a poly overhead in rounds\n";
  let rows =
    grid
      [
        ("apollonian", Generators.random_apollonian 128 ~seed:28, 0.3);
        ("grid", Workloads.grid_of 144, 0.3);
        ("tree", Generators.random_tree 128 ~seed:29, 0.3);
        ("blob-chain", Generators.blob_chain ~blobs:8 ~blob_size:16 ~seed:30, 0.3);
      ]
      (fun (name, g, eps) ->
      let d = Spectral.Expander_decomposition.decompose g ~epsilon:eps in
      let view = Distr.Cluster_view.of_labels g d.labels in
      (* max cluster diameter, for round budgets *)
      let diam =
        Array.fold_left
          (fun acc (_, sub, _) ->
            if Graph.n sub < 2 then acc
            else max acc (Traversal.diameter sub))
          1
          (Spectral.Expander_decomposition.clusters g d)
      in
      let election = Distr.Leader_election.run view ~rounds:diam in
      let leader_of = election.leader_of in
      let local =
        Distr.Local_gather.run view ~leader_of
          ~rounds_budget:((2 * diam) + 6)
      in
      let congest_budget =
        match Congest.Network.congest_bandwidth (Graph.n g) with
        | Congest.Network.Congest b -> b
        | Congest.Network.Local -> 0
      in
      let rec congest_gather walk_len attempts =
        let r =
          Distr.Gather.run view ~leader_of ~density:3. ~walk_len
            ~seed:(27 + attempts) ~max_rounds:(walk_len * 50)
        in
        if Distr.Gather.complete view ~leader_of r || attempts > 6 then r
        else congest_gather (walk_len * 2) (attempts + 1)
      in
      let congest = congest_gather 256 0 in
      [
        [
          name; i (Graph.n g); i d.k; i diam;
          i local.rounds; i local.max_message_bits;
          i congest.routing_stats.Congest.Network.last_traffic_round;
          i congest.routing_stats.Congest.Network.max_edge_bits;
          i congest_budget;
          f1
            (float_of_int local.max_message_bits
            /. float_of_int (max 1 congest.routing_stats.Congest.Network.max_edge_bits));
        ];
      ])
  in
  print_table
    ~title:
      "E11: gathering, LOCAL convergecast vs CONGEST random walks (bits = per edge per round)"
    ~header:
      [ "family"; "n"; "k"; "diam"; "LOCAL rounds"; "LOCAL bits";
        "CONGEST rounds"; "CONGEST bits"; "budget"; "bits gap" ]
    rows

(* ------------------------------------------------------------------ *)
(* E12 - distributed decomposition: measured rounds vs the charge       *)
(* ------------------------------------------------------------------ *)

let e12 () =
  note "\n### E12 (Theorem 2.1, constructive): distributed expander decomposition\n";
  note "claim: a genuinely distributed construction (every step simulated within\n";
  note "the CONGEST bandwidth) matches the oracle's quality; measured rounds are\n";
  note "compared against the Theorem 2.1 charge used elsewhere\n";
  let rows =
    grid
      [
        ("path", Generators.path 64, 0.3);
        ("tree", Generators.random_tree 128 ~seed:35, 0.3);
        ("blob-chain", Generators.blob_chain ~blobs:8 ~blob_size:12 ~seed:36, 0.4);
        ("grid", Workloads.grid_of 100, 0.3);
        ("apollonian", Generators.random_apollonian 96 ~seed:37, 0.3);
        ("barbell", Generators.barbell 10 2, 0.2);
      ]
      (fun (name, g, eps) ->
        let dd = Distr.Distributed_decomposition.decompose g ~epsilon:eps in
        let inter_ok, worst = Distr.Distributed_decomposition.verify g dd in
        let oracle = Spectral.Expander_decomposition.decompose g ~epsilon:eps in
        let _, oworst = Spectral.Expander_decomposition.verify g oracle in
        let charge = Core.Pipeline.construction_charge ~n:(Graph.n g) ~epsilon:eps in
        [
          [
            name; i (Graph.n g); f2 eps;
            i dd.k; i oracle.k;
            pct
              (float_of_int (List.length dd.inter_edges)
              /. float_of_int (max 1 (Graph.m g)));
            (if inter_ok then "yes" else "NO");
            f4 worst; f4 oworst;
            i dd.levels; i dd.total_rounds; i charge;
            i dd.max_edge_bits;
          ];
        ])
  in
  print_table
    ~title:
      "E12: distributed construction vs centralized oracle (k, conductance) and vs the round charge"
    ~header:
      [ "family"; "n"; "eps"; "k(dist)"; "k(oracle)"; "inter"; "in budget";
        "minCond(dist)"; "minCond(oracle)"; "levels"; "rounds"; "charge";
        "max bits" ]
    rows

(* ------------------------------------------------------------------ *)
(* E13 - extensions: weighted MIS, dominating set, vertex cover         *)
(* ------------------------------------------------------------------ *)

let e13 () =
  note "\n### E13 (extensions): weighted MaxIS, dominating set, vertex cover\n";
  note "measured quality of the framework on the Section 1.1 / 1.4 problem\n";
  note "variants; no (1-eps) guarantee is claimed for these (see DESIGN.md)\n";
  (* weighted MIS vs exact on solvable sizes *)
  let wmis_rows =
    grid
      [
        ("apollonian", Generators.random_apollonian 60 ~seed:40, 40);
        ("grid", Workloads.grid_of 49, 41);
        ("blob-chain", Generators.blob_chain ~blobs:5 ~blob_size:12 ~seed:42, 42);
      ]
      (fun (name, g, seed) ->
        let n = Graph.n g in
        let st = Random.State.make [| seed; 6151 |] in
        let weights = Array.init n (fun _ -> 1 + Random.State.int st 30) in
        let r =
          Core.App_mis.run_weighted ~mode:charged ~exact_limit:100 g ~weights
            ~epsilon:0.3 ~seed
        in
        let opt =
          Optimize.Mis.weight_of weights (Optimize.Mis.exact_weighted g weights)
        in
        [
          [
            "weighted-MIS"; name; i n; i r.total_weight; i opt;
            f3 (float_of_int r.total_weight /. float_of_int (max 1 opt));
          ];
        ])
  in
  (* dominating set *)
  let dom_rows =
    grid
      [
        ("grid", Generators.grid 6 6, 43);
        ("tree", Generators.random_tree 60 ~seed:44, 44);
        ("outerplanar", Generators.random_maximal_outerplanar 50 ~seed:45, 45);
      ]
      (fun (name, g, seed) ->
        let r = Core.App_covering.dominating_set ~mode:charged g ~epsilon:0.3 ~seed in
        let opt = Optimize.Dominating.exact_size g in
        [
          [
            "dominating-set"; name; i (Graph.n g); i r.size; i opt;
            f3 (float_of_int r.size /. float_of_int (max 1 opt));
          ];
        ])
  in
  (* vertex cover *)
  let vc_rows =
    grid
      [
        ("grid", Generators.grid 10 10, 46);
        ("apollonian", Generators.random_apollonian 120 ~seed:47, 47);
        ("blob-chain", Generators.blob_chain ~blobs:10 ~blob_size:12 ~seed:48, 48);
      ]
      (fun (name, g, seed) ->
        let r = Core.App_covering.vertex_cover ~mode:charged g ~epsilon:0.3 ~seed in
        let opt = Optimize.Vertex_cover.exact_size g in
        [
          [
            "vertex-cover"; name; i (Graph.n g); i r.size; i opt;
            f3 (float_of_int r.size /. float_of_int (max 1 opt));
          ];
        ])
  in
  print_table
    ~title:"E13: extension problems, framework vs exact (ratio: min problems want <= 1+eps, max problems >= 1-eps)"
    ~header:[ "problem"; "family"; "n"; "framework"; "exact"; "ratio" ]
    (wmis_rows @ dom_rows @ vc_rows)

(* ------------------------------------------------------------------ *)
(* Smoke workload: a seconds-scale slice of the pipeline used by the    *)
(* @bench-smoke alias to validate the observability profile end to end  *)
(* ------------------------------------------------------------------ *)

(* Decomposition engine for smoke's pipeline and the expander CLI;
   bench/main.ml sets it from --engine. decomp-bench always runs both
   engines (the frontier needs the comparison). *)
let engine = ref Core.Pipeline.Spectral_engine

let smoke () =
  note "\n### smoke: tiny end-to-end pass (pipeline + KPR + distributed)\n";
  note "engine: %s\n" (Core.Pipeline.engine_name !engine);
  (* the ref is read into the grid inputs before the fan-out, so the
     pooled task only ever touches its own tuple and stays pure *)
  let rows =
    grid
      [
        ("grid", Workloads.grid_of 64, 21, !engine);
        ( "blob-chain",
          Generators.blob_chain ~blobs:4 ~blob_size:8 ~seed:22,
          22,
          !engine );
      ]
      (fun (name, g, seed, eng) ->
        let p = Core.Pipeline.prepare ~engine:eng g ~epsilon:0.4 ~seed in
        let part = Decomp.Kpr.chop g ~width:4 ~levels:2 ~seed in
        let d = Distr.Distributed_decomposition.decompose g ~epsilon:0.4 in
        [
          [
            name; i (Graph.n g); i p.report.k;
            i p.report.simulated_rounds; i part.Decomp.Partition.k;
            i d.Distr.Distributed_decomposition.k;
          ];
        ])
  in
  print_table ~title:"smoke: pipeline / KPR / distributed decomposition"
    ~header:[ "family"; "n"; "k"; "sim rounds"; "kpr k"; "distr k" ]
    rows

(* ------------------------------------------------------------------ *)
(* Fault sweep: drop-rate x algorithm grid over the retry-hardened      *)
(* primitives on a lossy CONGEST network (lib/congest/faults.ml).       *)
(* bench/main.ml sets the refs from --fault-seed / --drop-rate; cell    *)
(* seeds are derived from the sweep seed before the grid fans out, so   *)
(* the table is byte-identical across reruns and --jobs settings.       *)
(* ------------------------------------------------------------------ *)

let fault_seed = ref 20220711
let fault_rates = ref [ 0.0; 0.05; 0.1; 0.2 ]

let fault_sweep () =
  note "\n### fault-sweep: retry-hardened primitives on a lossy network\n";
  note "claim: ack/retry broadcast, heartbeat BFS and heartbeat-evict election\n";
  note "complete under seeded Bernoulli drops (duplication rate = drop/4);\n";
  note "'rounds' is the smallest budget from a fixed ladder that passes the\n";
  note "algorithm's own checker, 'quiesce' the last round with traffic\n";
  let seed0 = !fault_seed in
  let rates = !fault_rates in
  let fams =
    [
      ("grid", Workloads.grid_of 64);
      ("apollonian", Generators.random_apollonian 64 ~seed:51);
    ]
  in
  let algs = [ "broadcast"; "bfs"; "election" ] in
  let cells =
    List.mapi
      (fun idx ((fam, alg), p) -> (fam, alg, p, Parallel.Pool.derive_seed seed0 idx))
      (cartesian (cartesian fams algs) rates)
  in
  let rows =
    grid cells (fun ((fname, g), alg, p, seed) ->
        let view = Distr.Cluster_view.whole g in
        let n = Graph.n g in
        let diam = Traversal.diameter_double_sweep g in
        let faults =
          Congest.Faults.make ~drop_rate:p ~duplicate_rate:(p /. 4.) ~seed ()
        in
        let budgets =
          [ diam + 2; (2 * diam) + 12; (4 * diam) + 30; (8 * diam) + 80 ]
        in
        (* smallest budget from the ladder that passes the checker *)
        let attempt rounds =
          match alg with
          | "broadcast" ->
              let sources =
                Array.init n (fun v -> if v = 0 then Some 424242 else None)
              in
              let r = Distr.Broadcast.run_reliable ~faults view ~sources ~rounds in
              (Distr.Broadcast.check view r ~sources, r.stats)
          | "bfs" ->
              let roots = Array.init n (fun v -> v = 0) in
              let r = Distr.Bfs_tree.run_reliable ~faults view ~roots ~rounds in
              (Distr.Bfs_tree.check view r ~roots, r.stats)
          | _ ->
              let r =
                Distr.Leader_election.run_reliable ~faults
                  ~patience:((2 * diam) + 8) view ~rounds
              in
              (Distr.Leader_election.check view r, r.stats)
        in
        let rec first_passing = function
          | [] -> (false, List.nth budgets (List.length budgets - 1))
          | b :: rest ->
              let ok, _ = attempt b in
              if ok then (true, b) else first_passing rest
        in
        let ok, budget = first_passing budgets in
        let _, stats = attempt budget in
        let s = stats in
        [
          [
            fname; alg; f2 p; i n; i diam;
            (if ok then "yes" else "NO");
            i budget;
            i s.Congest.Network.last_traffic_round;
            i s.Congest.Network.messages;
            i s.Congest.Network.dropped;
            i s.Congest.Network.duplicated;
            i s.Congest.Network.max_edge_bits;
          ];
        ])
  in
  print_table
    ~title:
      "fault-sweep: completion of retry-hardened primitives under message loss"
    ~header:
      [ "family"; "alg"; "drop"; "n"; "diam"; "ok"; "rounds"; "quiesce";
        "messages"; "dropped"; "dup"; "max bits" ]
    rows

(* ------------------------------------------------------------------ *)
(* congest-bench: the active-vertex scheduler against the reference     *)
(* loop. Each workload runs the same init / round function through      *)
(* Network.run_reference and Network.run ~schedule:Event_driven,        *)
(* asserts identical statistics, and records simulated rounds/sec and   *)
(* minor-heap allocation per round in BENCH_congest.json.               *)
(* bench/main.ml sets the refs from --congest-n / --congest-out.        *)
(* ------------------------------------------------------------------ *)

let congest_n = ref 20_000
let congest_out = ref "BENCH_congest.json"
let congest_shards = ref 4

(* top rung of the sharded scaling ladder; 0 = reuse --congest-n *)
let congest_scale_max = ref 0

(* a congest-bench workload: a graph plus a scheduler-agnostic algorithm
   obeying the wake-up contract, so both loops compute the same run *)
type 'a congest_workload = {
  cw_name : string;
  cw_graph : Graph.t;
  cw_round : int -> Congest.Network.ctx -> int -> (int * int) list ->
             (int, int) Congest.Network.step;
  cw_init : Congest.Network.ctx -> int;
  cw_max_rounds : int;
}

let congest_workloads n =
  let open Congest in
  let mix a b =
    ((a * 0x9e3779b1) lxor ((b * 0x85ebca6b) + 0x27d4eb2f)) land 0xfffffff
  in
  (* heartbeat: one endpoint of a long path beats every round while the
     other n - 2 vertices sleep — the sparse-frontier case the scheduler
     exists for *)
  let hb_rounds = 300 in
  let heartbeat =
    {
      cw_name = "heartbeat";
      cw_graph = Generators.path n;
      cw_init = (fun _ -> 0);
      cw_max_rounds = hb_rounds + 1;
      cw_round =
        (fun r (ctx : Network.ctx) st inbox ->
          let st = st + List.length inbox in
          if r > hb_rounds then Network.step st ~halt:true
          else if ctx.id = 0 then
            Network.step st
              ~send:[ (ctx.neighbors.(0), r land 0xff) ]
              ~wake_after:1
          else Network.step st ~wake_after:(hb_rounds + 1 - r));
    }
  in
  (* broadcast: a single value floods a grid; each vertex forwards once,
     so the frontier is the BFS wavefront *)
  let bgrid = Workloads.grid_of n in
  let bn = Graph.n bgrid in
  let bside = max 2 (int_of_float (sqrt (float_of_int bn))) in
  let bbudget = (2 * bside) + 4 in
  let broadcast =
    {
      cw_name = "broadcast";
      cw_graph = bgrid;
      cw_init = (fun (ctx : Network.ctx) -> if ctx.id = 0 then 424242 else -1);
      cw_max_rounds = bbudget + 1;
      cw_round =
        (fun r (ctx : Network.ctx) best inbox ->
          let nb = List.fold_left (fun b (_, x) -> max b x) best inbox in
          if r > bbudget then Network.step nb ~halt:true
          else begin
            let send =
              if (r = 1 && ctx.id = 0) || nb > best then
                Array.to_list (Array.map (fun w -> (w, nb)) ctx.neighbors)
              else []
            in
            Network.step nb ~send ~wake_after:(bbudget + 1 - r)
          end);
    }
  in
  (* bfs: depths propagate down a random tree from vertex 0 *)
  let tgraph = Generators.random_tree n ~seed:20220711 in
  let tbudget = Traversal.diameter_double_sweep tgraph + 2 in
  let bfs =
    {
      cw_name = "bfs";
      cw_graph = tgraph;
      cw_init = (fun (ctx : Network.ctx) -> if ctx.id = 0 then 0 else -1);
      cw_max_rounds = tbudget + 1;
      cw_round =
        (fun r (ctx : Network.ctx) depth inbox ->
          if r > tbudget then Network.step depth ~halt:true
          else begin
            let adopted =
              if depth >= 0 then depth
              else
                List.fold_left
                  (fun acc (_, d) -> if acc < 0 || d + 1 < acc then d + 1 else acc)
                  (-1) inbox
            in
            let send =
              if adopted >= 0 && depth < 0 then
                Array.to_list
                  (Array.map (fun w -> (w, adopted)) ctx.neighbors)
              else if r = 1 && ctx.id = 0 then
                Array.to_list (Array.map (fun w -> (w, 0)) ctx.neighbors)
              else []
            in
            Network.step adopted ~send ~wake_after:(tbudget + 1 - r)
          end);
    }
  in
  (* mis: hash-priority Luby rounds on the grid — the full-frontier case
     where Event_driven cannot skip anything and the flat inbox plumbing
     carries the win. States: -1 undecided, 0 out, 1 in; messages:
     2p = priority announcement, 1 = joined. *)
  let mn = Graph.n bgrid in
  let mbudget = 2 * (24 + (mn / max 1 (mn / 64))) in
  let mis =
    {
      cw_name = "mis";
      cw_graph = bgrid;
      cw_init = (fun _ -> -1);
      cw_max_rounds = mbudget;
      cw_round =
        (fun r (ctx : Network.ctx) st inbox ->
          if st >= 0 then Network.step st ~halt:true
          else if r land 1 = 1 then begin
            (* odd: absorb join notices; survivors announce priorities *)
            if List.exists (fun (_, m) -> m = 1) inbox then
              Network.step 0 ~halt:true
            else begin
              let p = 2 * mix ctx.id r in
              Network.step st
                ~send:
                  (Array.to_list (Array.map (fun w -> (w, p)) ctx.neighbors))
                ~wake_after:1
            end
          end
          else begin
            (* even: strict local maximum joins and notifies *)
            let mine = 2 * mix ctx.id (r - 1) in
            let beaten =
              List.exists (fun (_, m) -> m land 1 = 0 && m >= mine) inbox
            in
            if beaten then Network.step st ~wake_after:1
            else
              Network.step 1
                ~send:
                  (Array.to_list (Array.map (fun w -> (w, 1)) ctx.neighbors))
                ~wake_after:1
          end);
    }
  in
  [ heartbeat; broadcast; bfs; mis ]

let congest_measure f =
  let mw0 = Gc.minor_words () in
  let t0 = Obs.Clock.wall_s () in
  let states, stats = f () in
  let dt = Obs.Clock.wall_s () -. t0 in
  let mw = Gc.minor_words () -. mw0 in
  (states, (stats : Congest.Network.stats), max 1e-9 dt, mw)

let congest_sharded_exec () =
  Congest.Network.Sharded { shards = max 1 !congest_shards; pool = !pool }

let congest_bench () =
  note "\n### congest-bench: scheduler and shard pool vs reference loop\n";
  note "claim: identical stats; large speedups on sparse frontiers\n";
  let bench_one cw =
    let n = Graph.n cw.cw_graph in
    let msg_bits _ = Congest.Bits.id_bits n in
    (* per-vertex step counters: disjoint slots stay race-free when the
       sharded loop steps vertices on several domains at once *)
    let counts = Array.make n 0 in
    let counted_round r (ctx : Congest.Network.ctx) st inbox =
      counts.(ctx.id) <- counts.(ctx.id) + 1;
      cw.cw_round r ctx st inbox
    in
    let take_counts () =
      let s = Array.fold_left ( + ) 0 counts in
      Array.fill counts 0 n 0;
      s
    in
    let measure = congest_measure in
    let ref_states, ref_stats, ref_s, ref_mw =
      measure (fun () ->
          Congest.Network.run_reference cw.cw_graph ~bandwidth:Congest.Network.Local
            ~msg_bits ~init:cw.cw_init ~round:counted_round
            ~max_rounds:cw.cw_max_rounds)
    in
    let ref_steps = take_counts () in
    let ev_states, ev_stats, ev_s, ev_mw =
      measure (fun () ->
          Congest.Network.run cw.cw_graph ~schedule:Congest.Network.Event_driven
            ~bandwidth:Congest.Network.Local ~msg_bits ~init:cw.cw_init
            ~round:counted_round ~max_rounds:cw.cw_max_rounds)
    in
    let ev_steps = take_counts () in
    (* the workloads' messages are small non-negative ints, so the packed
       immediate path of int_codec carries every payload. minor_words for
       this side only sees the coordinator domain's allocations. *)
    let sh_states, sh_stats, sh_s, sh_mw =
      measure (fun () ->
          Congest.Network.run cw.cw_graph ~schedule:Congest.Network.Event_driven
            ~exec:(congest_sharded_exec ()) ~codec:Congest.Network.int_codec
            ~bandwidth:Congest.Network.Local ~msg_bits ~init:cw.cw_init
            ~round:counted_round ~max_rounds:cw.cw_max_rounds)
    in
    let sh_steps = take_counts () in
    let stats_equal =
      ref_stats = ev_stats && ref_states = ev_states
      && ref_stats = sh_stats && ref_states = sh_states
    in
    let rounds = float_of_int (max 1 ref_stats.Congest.Network.rounds) in
    let ref_rps = rounds /. ref_s
    and ev_rps = rounds /. ev_s
    and sh_rps = rounds /. sh_s in
    let ref_wpr = ref_mw /. rounds
    and ev_wpr = ev_mw /. rounds
    and sh_wpr = sh_mw /. rounds in
    let side label seconds rps wpr steps =
      ( label,
        Obs.Json.Obj
          [
            ("seconds", Obs.Json.Float seconds);
            ("rounds_per_sec", Obs.Json.Float rps);
            ("minor_words_per_round", Obs.Json.Float wpr);
            ("round_calls", Obs.Json.Int steps);
          ] )
    in
    let json =
      Obs.Json.Obj
        [
          ("name", Obs.Json.Str cw.cw_name);
          ("n", Obs.Json.Int n);
          ("rounds", Obs.Json.Int ref_stats.Congest.Network.rounds);
          ("messages", Obs.Json.Int ref_stats.Congest.Network.messages);
          ("active_vertices", Obs.Json.Int ev_steps);
          side "reference" ref_s ref_rps ref_wpr ref_steps;
          side "event" ev_s ev_rps ev_wpr ev_steps;
          side "sharded" sh_s sh_rps sh_wpr sh_steps;
          ("speedup", Obs.Json.Float (ev_rps /. ref_rps));
          ("sharded_speedup", Obs.Json.Float (sh_rps /. ref_rps));
          ( "alloc_ratio",
            Obs.Json.Float (ref_wpr /. max 1e-9 ev_wpr) );
          ("stats_equal", Obs.Json.Bool stats_equal);
        ]
    in
    let row =
      [
        cw.cw_name; i n;
        i ref_stats.Congest.Network.rounds;
        i ref_stats.Congest.Network.messages;
        i ref_steps; i ev_steps;
        f1 (ev_rps /. ref_rps);
        f1 (sh_rps /. ref_rps);
        (if stats_equal then "yes" else "NO");
      ]
    in
    (json, row)
  in
  let results = List.map bench_one (congest_workloads !congest_n) in
  print_table
    ~title:"congest-bench: Event_driven / sharded vs run_reference"
    ~header:
      [ "workload"; "n"; "rounds"; "messages"; "ref calls"; "event calls";
        "speedup"; "sh speedup"; "stats eq" ]
    (List.map snd results);
  (* the scaling ladder: sharded vs sequential event-driven (no reference
     side — the full sweep is what the big-n runs exist to avoid), at
     n = m/16, m/4, m for the event-friendly workloads *)
  let ladder_one n cw =
    let gn = Graph.n cw.cw_graph in
    let msg_bits _ = Congest.Bits.id_bits gn in
    let ev_states, ev_stats, ev_s, _ =
      congest_measure (fun () ->
          Congest.Network.run cw.cw_graph ~schedule:Congest.Network.Event_driven
            ~bandwidth:Congest.Network.Local ~msg_bits ~init:cw.cw_init
            ~round:cw.cw_round ~max_rounds:cw.cw_max_rounds)
    in
    let sh_states, sh_stats, sh_s, _ =
      congest_measure (fun () ->
          Congest.Network.run cw.cw_graph ~schedule:Congest.Network.Event_driven
            ~exec:(congest_sharded_exec ()) ~codec:Congest.Network.int_codec
            ~bandwidth:Congest.Network.Local ~msg_bits ~init:cw.cw_init
            ~round:cw.cw_round ~max_rounds:cw.cw_max_rounds)
    in
    let stats_equal = ev_stats = sh_stats && ev_states = sh_states in
    note "  scaling %-9s n=%-8d  event %.3fs  sharded %.3fs  %s\n" cw.cw_name
      n ev_s sh_s
      (if stats_equal then "stats eq" else "STATS MISMATCH");
    Obs.Json.Obj
      [
        ("name", Obs.Json.Str cw.cw_name);
        ("n", Obs.Json.Int n);
        ("rounds", Obs.Json.Int ev_stats.Congest.Network.rounds);
        ("event_seconds", Obs.Json.Float ev_s);
        ("sharded_seconds", Obs.Json.Float sh_s);
        ("speedup", Obs.Json.Float (ev_s /. sh_s));
        ("stats_equal", Obs.Json.Bool stats_equal);
      ]
  in
  let scale_max =
    if !congest_scale_max > 0 then !congest_scale_max else !congest_n
  in
  let rungs =
    let candidates =
      List.sort_uniq compare
        (List.filter
           (fun x -> x >= 64)
           [ scale_max / 16; scale_max / 4; scale_max ])
    in
    if candidates = [] then [ scale_max ] else candidates
  in
  note "\n### sharded scaling ladder (event-driven vs sharded)\n";
  let scaling =
    List.concat_map
      (fun n ->
        congest_workloads n
        |> List.filter (fun cw -> cw.cw_name <> "mis")
        |> List.map (ladder_one n))
      rungs
  in
  let doc =
    Obs.Json.Obj
      [
        ("schema", Obs.Json.Str "expander-congest-bench");
        ("version", Obs.Json.Int 2);
        ("n", Obs.Json.Int !congest_n);
        ("shards", Obs.Json.Int (max 1 !congest_shards));
        ("workloads", Obs.Json.List (List.map fst results));
        ("scaling", Obs.Json.List scaling);
      ]
  in
  Obs.Export.write_file !congest_out (Obs.Json.to_string_pretty doc);
  Printf.printf "[congest-bench written to %s]\n" !congest_out

(* ------------------------------------------------------------------ *)
(* decomp-bench: the quality-vs-speed frontier of the two expander-    *)
(* decomposition engines (spectral bipartitioning vs the flow-based    *)
(* cut-matching game) over a grid / planar / regular size ladder.      *)
(* Both engines run at every point; small instances are cross-checked  *)
(* against the spectral conductance oracle (every accepted cluster     *)
(* must certify >= phi). Results go to BENCH_decomp.json (schema       *)
(* "expander-decomp-bench", validated by check_profile --decomp-bench).*)
(* bench/main.ml sets the refs from --decomp-n / --decomp-out.         *)
(* ------------------------------------------------------------------ *)

let decomp_n = ref 16_384
let decomp_out = ref "BENCH_decomp.json"

let decomp_epsilon = 0.5

(* instances up to this size get the full conductance oracle pass *)
let decomp_oracle_limit = 300

let decomp_families seed =
  [
    ("grid", fun n -> Workloads.grid_of n);
    ("planar", fun n -> Generators.random_apollonian (max 4 n) ~seed);
    ("regular",
     fun n ->
       let n = max 4 (if n mod 2 = 0 then n else n + 1) in
       Generators.random_regular n 4 ~seed);
  ]

let decomp_bench () =
  note "\n### decomp-bench: spectral vs cut-matching expander decomposition\n";
  note "quality (inter-cluster edge fraction, oracle conductance) vs wall\n";
  note "time on a grid/planar/regular ladder; epsilon = %.2f\n" decomp_epsilon;
  let rungs =
    let top = max 64 !decomp_n in
    let candidates =
      List.sort_uniq compare
        (List.filter (fun x -> x >= 64) [ top / 64; top / 16; top / 4; top ])
    in
    if candidates = [] then [ top ] else candidates
  in
  let engines =
    [ Core.Pipeline.Spectral_engine; Core.Pipeline.Cut_matching_engine ]
  in
  let bench_one fname g n eng =
    let t0 = Obs.Clock.wall_s () in
    let d, st =
      match eng with
      | Core.Pipeline.Spectral_engine ->
          ( Spectral.Expander_decomposition.decompose ~pool:!pool g
              ~epsilon:decomp_epsilon,
            Flow.Decomp_engine.zero_stats )
      | Core.Pipeline.Cut_matching_engine ->
          Flow.Decomp_engine.decompose ~pool:!pool g ~epsilon:decomp_epsilon
    in
    let seconds = Obs.Clock.wall_s () -. t0 in
    let open Spectral.Expander_decomposition in
    let inter = List.length d.inter_edges in
    let frac = inter_fraction g d in
    let oracle_checked = Graph.n g <= decomp_oracle_limit in
    let oracle =
      if oracle_checked then begin
        let inter_ok, worst = verify ~pool:!pool g d in
        Some (inter_ok && worst +. 1e-9 >= d.phi, worst)
      end
      else None
    in
    let ename = Core.Pipeline.engine_name eng in
    let row =
      [
        fname; i (Graph.n g); ename; i d.k; pct frac;
        Printf.sprintf "%.3f" seconds;
        i st.Flow.Decomp_engine.games;
        i st.Flow.Decomp_engine.game_rounds;
        i st.Flow.Decomp_engine.flow_calls;
        i st.Flow.Decomp_engine.heuristic_cuts;
        (match oracle with
        | None -> "-"
        | Some (true, worst) -> Printf.sprintf "ok (%.4f)" worst
        | Some (false, worst) -> Printf.sprintf "FAIL (%.4f)" worst);
      ]
    in
    let json =
      Obs.Json.Obj
        ([
           ("family", Obs.Json.Str fname);
           ("n", Obs.Json.Int n);
           ("engine", Obs.Json.Str ename);
           ("seconds", Obs.Json.Float seconds);
           ("k", Obs.Json.Int d.k);
           ("inter_edges", Obs.Json.Int inter);
           ("inter_fraction", Obs.Json.Float frac);
           ("phi", Obs.Json.Float d.phi);
           ("tau", Obs.Json.Float d.tau);
           ("games", Obs.Json.Int st.Flow.Decomp_engine.games);
           ("game_rounds", Obs.Json.Int st.Flow.Decomp_engine.game_rounds);
           ("flow_calls", Obs.Json.Int st.Flow.Decomp_engine.flow_calls);
           ("heuristic_cuts",
            Obs.Json.Int st.Flow.Decomp_engine.heuristic_cuts);
           ("oracle_checked", Obs.Json.Bool oracle_checked);
         ]
        @
        match oracle with
        | None -> []
        | Some (ok, worst) ->
            [
              ("oracle_ok", Obs.Json.Bool ok);
              ("min_conductance", Obs.Json.Float worst);
            ])
    in
    (json, row)
  in
  let results =
    List.concat_map
      (fun (fname, gen) ->
        List.concat_map
          (fun n ->
            let g = gen n in
            List.map (fun eng -> bench_one fname g n eng) engines)
          rungs)
      (decomp_families 20220711)
  in
  print_table ~title:"decomp-bench: spectral vs cut-matching"
    ~header:
      [ "family"; "n"; "engine"; "k"; "inter"; "seconds"; "games"; "rounds";
        "flows"; "heur"; "oracle" ]
    (List.map snd results);
  let doc =
    Obs.Json.Obj
      [
        ("schema", Obs.Json.Str "expander-decomp-bench");
        ("version", Obs.Json.Int 1);
        ("epsilon", Obs.Json.Float decomp_epsilon);
        ("n", Obs.Json.Int !decomp_n);
        ("results", Obs.Json.List (List.map fst results));
      ]
  in
  Obs.Export.write_file !decomp_out (Obs.Json.to_string_pretty doc);
  Printf.printf "[decomp-bench written to %s]\n" !decomp_out

(* ------------------------------------------------------------------ *)
(* route-bench: the expander-routing serving layer                     *)
(* ------------------------------------------------------------------ *)

let route_n = ref 16_384
let route_demands = ref 1_000_000
let route_out = ref "BENCH_route.json"

let route_epsilon = 0.5

(* rungs small enough to execute the planned paths on the simulator *)
let route_congest_limit = 1_100

(* hot-spot skew: this fraction of demands target one popular vertex *)
let route_hot_fraction = 0.9

let route_families seed =
  [
    ("grid", fun n -> Workloads.grid_of n);
    ("planar", fun n -> Generators.random_apollonian (max 4 n) ~seed);
  ]

let route_demand_batch g ~pattern ~count ~seed =
  let n = Graph.n g in
  let st = Random.State.make [| seed; Hashtbl.hash pattern |] in
  let hot = n / 2 in
  Array.init count (fun _ ->
      let src = Random.State.int st n in
      let dst =
        match pattern with
        | "hotspot" when Random.State.float st 1.0 < route_hot_fraction -> hot
        | _ -> Random.State.int st n
      in
      { Route.Service.src; dst; weight = 1 })

let route_percentile_of sorted p =
  let len = Array.length sorted in
  if len = 0 then 0
  else begin
    let rank = ((len * p) + 99) / 100 in
    sorted.(max 0 (min (len - 1) (rank - 1)))
  end

(* walk-router hot-spot allocation probe: every token converges on one
   leader (a complete graph is the worst-case inbox), at load L and 2L;
   linear receive-and-queue keeps minor words per token flat, the old
   quadratic inbox merge roughly doubled them *)
let route_walk_alloc_probe () =
  let g = Generators.complete 48 in
  let view = Distr.Cluster_view.whole g in
  let leaders = Distr.Leader_election.run view ~rounds:2 in
  let words_per_token load =
    let before = Gc.minor_words () in
    let r =
      Distr.Walk_routing.run view
        ~leader_of:leaders.Distr.Leader_election.leader_of
        ~tokens_of:(fun _ -> load)
        ~walk_len:64 ~seed:17 ~max_rounds:5000
    in
    let words = Gc.minor_words () -. before in
    ignore r;
    words /. float_of_int (load * Graph.n g)
  in
  let w1 = words_per_token 8 in
  let w2 = words_per_token 16 in
  (w1, w2, w2 /. Float.max 1e-9 w1)

let route_bench () =
  note "\n### route-bench: expander routing as a serving layer\n";
  note "preprocess a witness hierarchy per decomposition, then serve\n";
  note "random and hot-spot demand batches; epsilon = %.2f\n" route_epsilon;
  let rungs =
    let top = max 64 !route_n in
    let candidates =
      List.sort_uniq compare
        (List.filter (fun x -> x >= 64) [ top / 16; top / 4; top ])
    in
    if candidates = [] then [ top ] else candidates
  in
  let top = List.fold_left max 0 rungs in
  let configs eng =
    match eng with
    | Core.Pipeline.Cut_matching_engine -> [ true; false ]
    | Core.Pipeline.Spectral_engine -> [ true ]
  in
  let bench_one fname g n eng reuse =
    let ename = Core.Pipeline.engine_name eng in
    let p =
      Core.Pipeline.prepare ~mode:charged ~engine:eng ~pool:!pool g
        ~epsilon:route_epsilon ~seed:20220711
    in
    let t0 = Obs.Clock.wall_s () in
    let svc = Core.Pipeline.routing_service ~reuse ~seed:31 p in
    let pre_s = Obs.Clock.wall_s () -. t0 in
    let hinfo = Route.Hierarchy.info (Route.Service.hierarchy svc) in
    let count =
      if n = top then !route_demands
      else max 20_000 (!route_demands / 50)
    in
    (* one serve per pattern x selection policy: the v2 axis comparing
       round-robin cursors against least-loaded (power-of-two-choices)
       portal and entry selection on the same demand batch *)
    let serve_pattern pattern (policy, pname) =
      let ds = route_demand_batch g ~pattern ~count ~seed:(n + 5) in
      let t0 = Obs.Clock.wall_s () in
      let s = Route.Service.serve ~policy svc ds in
      let secs = Obs.Clock.wall_s () -. t0 in
      let dps = float_of_int s.Route.Service.demands /. Float.max 1e-9 secs in
      ( s,
        secs,
        dps,
        Obs.Json.Obj
          [
            ("pattern", Obs.Json.Str pattern);
            ("policy", Obs.Json.Str pname);
            ("demands", Obs.Json.Int s.Route.Service.demands);
            ("delivered", Obs.Json.Int s.Route.Service.delivered);
            ("failed", Obs.Json.Int s.Route.Service.failed);
            ("fallbacks", Obs.Json.Int s.Route.Service.fallbacks);
            ("rounds_p50", Obs.Json.Int s.Route.Service.rounds_p50);
            ("rounds_p99", Obs.Json.Int s.Route.Service.rounds_p99);
            ("rounds_max", Obs.Json.Int s.Route.Service.rounds_max);
            ("congestion_max", Obs.Json.Int s.Route.Service.congestion_max);
            ("congestion_total", Obs.Json.Int s.Route.Service.congestion_total);
            ("seconds", Obs.Json.Float secs);
            ("demands_per_sec", Obs.Json.Float dps);
          ] )
    in
    let rr = (Route.Hierarchy.Round_robin, "round_robin") in
    let ll = (Route.Hierarchy.Least_loaded, "least_loaded") in
    let _, _, _, rand_rr_json = serve_pattern "random" rr in
    let rand_s, _, rand_dps, rand_ll_json = serve_pattern "random" ll in
    let hot_rr, _, _, hot_rr_json = serve_pattern "hotspot" rr in
    let hot_ll, _, _, hot_ll_json = serve_pattern "hotspot" ll in
    (* execute the plans on the sharded simulator where tractable and
       check the deliveries against the planner *)
    let congest_json =
      if n > route_congest_limit then Obs.Json.Null
      else begin
        let cds =
          route_demand_batch g ~pattern:"random" ~count:(min 2_000 count)
            ~seed:(n + 9)
        in
        let shards = 4 in
        let r =
          Route.Service.serve_congest
            ~exec:(Congest.Network.Sharded { shards; pool = !pool })
            svc cds ~max_rounds:40_000
        in
        let arr =
          Array.of_list
            (List.filter (fun x -> x >= 0)
               (Array.to_list
                  (Array.map Fun.id
                     r.Route.Service.routed.Distr.Witness_routing.rounds_of)))
        in
        Array.sort compare arr;
        Obs.Json.Obj
          [
            ("demands", Obs.Json.Int (Array.length cds));
            ("shards", Obs.Json.Int shards);
            ( "rounds",
              Obs.Json.Int
                r.Route.Service.routed.Distr.Witness_routing.last_round );
            ("rounds_p50", Obs.Json.Int (route_percentile_of arr 50));
            ("rounds_p99", Obs.Json.Int (route_percentile_of arr 99));
            ( "planner_match",
              Obs.Json.Bool r.Route.Service.match_planner );
          ]
      end
    in
    let row =
      [
        fname; i n; ename;
        (if reuse then "reuse" else "rebuild");
        Printf.sprintf "%.3f" pre_s;
        i hinfo.Route.Hierarchy.clusters;
        i hinfo.Route.Hierarchy.shortcuts;
        i hinfo.Route.Hierarchy.rebuilt_leaves;
        i rand_s.Route.Service.rounds_p50;
        i rand_s.Route.Service.rounds_p99;
        i hot_rr.Route.Service.congestion_max;
        i hot_ll.Route.Service.congestion_max;
        Printf.sprintf "%.0fk/s" (rand_dps /. 1e3);
      ]
    in
    let json =
      Obs.Json.Obj
        [
          ("family", Obs.Json.Str fname);
          ("n", Obs.Json.Int n);
          ("engine", Obs.Json.Str ename);
          ("reuse", Obs.Json.Bool reuse);
          ("preprocess_seconds", Obs.Json.Float pre_s);
          ("clusters", Obs.Json.Int hinfo.Route.Hierarchy.clusters);
          ("shortcuts", Obs.Json.Int hinfo.Route.Hierarchy.shortcuts);
          ("rebuilt_leaves", Obs.Json.Int hinfo.Route.Hierarchy.rebuilt_leaves);
          ("reused_leaves", Obs.Json.Int hinfo.Route.Hierarchy.reused_leaves);
          ("tree_height", Obs.Json.Int hinfo.Route.Hierarchy.tree_height);
          ( "patterns",
            Obs.Json.List
              [ rand_rr_json; rand_ll_json; hot_rr_json; hot_ll_json ] );
          ("congest", congest_json);
        ]
    in
    (json, row)
  in
  let results =
    List.concat_map
      (fun (fname, gen) ->
        List.concat_map
          (fun n ->
            let g = gen n in
            List.concat_map
              (fun eng ->
                List.map
                  (fun reuse -> bench_one fname g n eng reuse)
                  (configs eng))
              [ Core.Pipeline.Spectral_engine;
                Core.Pipeline.Cut_matching_engine ])
          rungs)
      (route_families 20220711)
  in
  (* jobs-scaling ladder: the same top-rung batch served by the
     epoch-parallel planner at increasing pool sizes; the summary must
     be byte-identical at every rung (the epoch snapshot contract).
     Speedups are what this host's cores allow — a single-core CI
     container reports flat-or-worse wall clock, see EXPERIMENTS.md *)
  let ladder =
    let n = top in
    let g = Workloads.grid_of n in
    let p =
      Core.Pipeline.prepare ~mode:charged
        ~engine:Core.Pipeline.Cut_matching_engine ~pool:!pool g
        ~epsilon:route_epsilon ~seed:20220711
    in
    let ds = route_demand_batch g ~pattern:"random" ~count:!route_demands
        ~seed:(n + 5) in
    let base = ref None in
    let base_dps = ref 0. in
    List.map
      (fun jobs ->
        let jp = Parallel.Pool.create ~jobs () in
        let svc = Core.Pipeline.routing_service ~reuse:true ~seed:31 ~pool:jp p in
        let t0 = Obs.Clock.wall_s () in
        let s = Route.Service.serve svc ds in
        let secs = Obs.Clock.wall_s () -. t0 in
        let dps = float_of_int s.Route.Service.demands /. Float.max 1e-9 secs in
        let equal =
          match !base with
          | None ->
              base := Some s;
              base_dps := dps;
              true
          | Some b -> s = b
        in
        note "jobs %d: %.2fs (%.0fk demands/s)%s\n" jobs secs (dps /. 1e3)
          (if equal then "" else "  ** SUMMARY MISMATCH **");
        Obs.Json.Obj
          [
            ("jobs", Obs.Json.Int jobs);
            ("seconds", Obs.Json.Float secs);
            ("demands_per_sec", Obs.Json.Float dps);
            ("summary_equal", Obs.Json.Bool equal);
            ( "speedup_vs_j1",
              Obs.Json.Float (dps /. Float.max 1e-9 !base_dps) );
          ])
      [ 1; 2; 4 ]
  in
  let w1, w2, ratio = route_walk_alloc_probe () in
  note "walk-router hot-spot alloc: %.1f words/token at 1x, %.1f at 2x (ratio %.2f)\n"
    w1 w2 ratio;
  print_table ~title:"route-bench: witness-hierarchy serving"
    ~header:
      [ "family"; "n"; "engine"; "witness"; "pre(s)"; "k"; "shortcuts";
        "rebuilt"; "p50"; "p99"; "cmax rr"; "cmax ll"; "rate" ]
    (List.map snd results);
  let doc =
    Obs.Json.Obj
      [
        ("schema", Obs.Json.Str "expander-route-bench");
        ("version", Obs.Json.Int 2);
        ("epsilon", Obs.Json.Float route_epsilon);
        ("n", Obs.Json.Int !route_n);
        ("demands", Obs.Json.Int !route_demands);
        ("results", Obs.Json.List (List.map fst results));
        ("jobs_ladder", Obs.Json.List ladder);
        ( "walk_router",
          Obs.Json.Obj
            [
              ("words_per_token_1x", Obs.Json.Float w1);
              ("words_per_token_2x", Obs.Json.Float w2);
              ("alloc_ratio", Obs.Json.Float ratio);
            ] );
      ]
  in
  Obs.Export.write_file !route_out (Obs.Json.to_string_pretty doc);
  Printf.printf "[route-bench written to %s]\n" !route_out
