(* Shared workload generators for the experiments. *)

open Sparse_graph

let grid_of n =
  let side = max 2 (int_of_float (sqrt (float_of_int n))) in
  Generators.grid side side

let families ~seed =
  [
    ("grid", grid_of);
    ("apollonian", fun n -> Generators.random_apollonian (max 4 n) ~seed);
    ("tree", fun n -> Generators.random_tree (max 2 n) ~seed);
    ("k-tree(3)", fun n -> Generators.random_k_tree (max 5 n) 3 ~seed);
    ("outerplanar", fun n -> Generators.random_maximal_outerplanar (max 3 n) ~seed);
    ("blob-chain", fun n ->
      Generators.blob_chain ~blobs:(max 1 (n / 16)) ~blob_size:16 ~seed);
  ]

(* family list including non-minor-free contrast graphs, for E7 *)
let families_with_contrast ~seed =
  families ~seed
  @ [
      ("hypercube", fun n ->
        let d = max 2 (int_of_float (log (float_of_int (max 4 n)) /. log 2.)) in
        Generators.hypercube d);
      ("random-3-regular", fun n ->
        let n = if n mod 2 = 0 then n else n + 1 in
        Generators.random_regular (max 4 n) 3 ~seed);
    ]

let planted_correlation g ~communities_count ~noise ~seed =
  let n = Graph.n g in
  let communities = Array.init n (fun v -> v mod communities_count) in
  (communities, Generators.planted_sign_labels g communities ~noise ~seed)
