(* Benchmark harness: regenerates every experiment table (E1-E9, see
   DESIGN.md section 3) and runs the Bechamel timing micro-benchmarks.

     dune exec bench/main.exe                 # everything
     dune exec bench/main.exe -- e6           # one experiment
     dune exec bench/main.exe -- timing       # only the timing benches
     dune exec bench/main.exe -- e8 --jobs 4  # grid points on 4 domains
     dune exec bench/main.exe -- e8 --profile BENCH_profile.json

   --jobs N (or the EXPANDER_JOBS environment variable) sets the worker
   pool for the grid points inside each experiment; the default is
   Domain.recommended_domain_count and --jobs 1 forces the sequential
   path. Tables are byte-identical at every jobs value. Wall-clock per
   experiment is recorded in the timings file (default
   BENCH_parallel.json; override with --timings PATH).

   The fault-sweep experiment takes --fault-seed N (sweep PRNG seed,
   default 20220711) and --drop-rate F (restrict the sweep to one drop
   rate instead of the default ladder 0 / 0.05 / 0.1 / 0.2).

   Observability (lib/obs) is enabled for the table experiments: each
   runs inside an "exp.<name>" span, so the timings file also carries
   per-phase wall-clock taken from the span tree. --profile PATH writes
   the full profile (schema "expander-obs-profile": deterministic span
   aggregate + volatile timings); --trace PATH writes a Chrome
   trace_event file loadable in Perfetto / chrome://tracing. The
   "timing" micro-benchmarks run with observability off so Bechamel
   measures the uninstrumented hot paths. *)

open Sparse_graph

(* ------------------------------------------------------------------ *)
(* Bechamel timing benches: one Test.make per experiment workload       *)
(* ------------------------------------------------------------------ *)

let timing () =
  let open Bechamel in
  print_endline "\n### Timing micro-benchmarks (Bechamel, ns per run)";
  let grid = Generators.grid 32 32 in
  let apo = Generators.random_apollonian 256 ~seed:1 in
  let apo_small = Generators.random_apollonian 64 ~seed:2 in
  let w = Weights.random apo ~max_w:64 ~seed:3 in
  let labels = Generators.random_sign_labels apo_small ~frac_pos:0.5 ~seed:4 in
  let tree = Generators.random_tree 1024 ~seed:5 in
  let tests =
    [
      (* E8 workload: the expander decomposition itself *)
      Test.make ~name:"e8: expander decomposition (grid 1024)"
        (Staged.stage (fun () ->
             ignore
               (Spectral.Expander_decomposition.decompose grid ~epsilon:0.5)));
      (* E1 workload: exact MIS local solve *)
      Test.make ~name:"e1: exact MIS (apollonian 64)"
        (Staged.stage (fun () -> ignore (Optimize.Mis.exact apo_small)));
      (* E2 workload: blossom matching local solve *)
      Test.make ~name:"e2: blossom MCM (apollonian 256)"
        (Staged.stage (fun () ->
             ignore (Matching.Blossom.max_cardinality_matching apo)));
      (* E3 workload: scaling MWM *)
      Test.make ~name:"e3: scaling MWM (apollonian 256)"
        (Staged.stage (fun () -> ignore (Matching.Scaling.run apo w)));
      (* E4 workload: correlation local solver *)
      Test.make ~name:"e4: correlation solve (apollonian 64)"
        (Staged.stage (fun () ->
             ignore (Optimize.Correlation.solve apo_small labels ~seed:5)));
      (* E5 workload: planarity test *)
      Test.make ~name:"e5: planarity test (apollonian 256)"
        (Staged.stage (fun () -> ignore (Minorfree.Planarity.is_planar apo)));
      (* E6 workload: KPR chop *)
      Test.make ~name:"e6: KPR chop (grid 1024)"
        (Staged.stage (fun () ->
             ignore (Decomp.Kpr.chop grid ~width:8 ~levels:2 ~seed:6)));
      (* E7 workload: balanced edge separator *)
      Test.make ~name:"e7: edge separator (grid 1024)"
        (Staged.stage (fun () ->
             ignore (Decomp.Edge_separator.best grid ~seed:7)));
      (* E9 workload: leader election on the simulator *)
      Test.make ~name:"e9: leader election (tree 1024)"
        (Staged.stage (fun () ->
             ignore
               (Distr.Leader_election.run
                  (Distr.Cluster_view.whole tree)
                  ~rounds:(Traversal.diameter_double_sweep tree + 2))));
      (* E5 fast path: left-right planarity *)
      Test.make ~name:"e5: LR planarity (apollonian 2000)"
        (Staged.stage
           (let big = Generators.random_apollonian 2000 ~seed:9 in
            fun () -> ignore (Minorfree.Lr_planarity.is_planar big)));
      (* E12 workload: the distributed construction *)
      Test.make ~name:"e12: distributed decomposition (blob-chain 72)"
        (Staged.stage
           (let bc = Generators.blob_chain ~blobs:6 ~blob_size:12 ~seed:10 in
            fun () ->
              ignore
                (Distr.Distributed_decomposition.decompose bc ~epsilon:0.4)));
      (* local clustering *)
      Test.make ~name:"nibble: PPR local cluster (blob-chain 720)"
        (Staged.stage
           (let bc = Generators.blob_chain ~blobs:60 ~blob_size:12 ~seed:11 in
            fun () ->
              ignore
                (Spectral.Local_cluster.find bc ~seed_vertex:360
                   ~target_volume:70)));
      (* E13 workload: exact dominating set *)
      Test.make ~name:"e13: exact dominating set (grid 36)"
        (Staged.stage
           (let g66 = Generators.grid 6 6 in
            fun () -> ignore (Optimize.Dominating.exact g66)));
    ]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) ~stabilize:false ()
  in
  let results_of test =
    let raw = Benchmark.all cfg instances test in
    Analyze.all
      (Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |])
      Toolkit.Instance.monotonic_clock raw
  in
  List.iter
    (fun test ->
      let results = results_of (Test.make_grouped ~name:"g" [ test ]) in
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some (est :: _) ->
              Printf.printf "  %-45s %12.0f ns/run\n" name est
          | _ -> Printf.printf "  %-45s (no estimate)\n" name)
        results)
    tests

(* ------------------------------------------------------------------ *)
(* Driver                                                               *)
(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("e1", Experiments.e1);
    ("e2", Experiments.e2);
    ("e3", Experiments.e3);
    ("e4", Experiments.e4);
    ("e5", Experiments.e5);
    ("e6", Experiments.e6);
    ("e7", Experiments.e7);
    ("e8", Experiments.e8);
    ("e9", Experiments.e9);
    ("e10", Experiments.e10);
    ("e11", Experiments.e11);
    ("e12", Experiments.e12);
    ("e13", Experiments.e13);
    ("fault-sweep", Experiments.fault_sweep);
    ("congest-bench", Experiments.congest_bench);
    ("decomp-bench", Experiments.decomp_bench);
    ("route-bench", Experiments.route_bench);
    ("smoke", Experiments.smoke);
    ("timing", timing);
  ]

(* per-phase wall-clock of one experiment, read back from the span tree:
   the direct children of "exp.<name>" with their summed span ns *)
let phases_of tree name =
  match Obs.Agg.find_path tree [ "exp." ^ name ] with
  | None -> []
  | Some node ->
      List.map
        (fun (child, (c : Obs.Agg.node)) ->
          let ns =
            match Obs.Agg.SMap.find_opt "ns" c.Obs.Agg.volatile with
            | Some v -> v
            | None -> 0
          in
          Obs.Json.Obj
            [
              ("name", Obs.Json.Str child);
              ("count", Obs.Json.Int c.Obs.Agg.count);
              ("seconds", Obs.Json.Float (float_of_int ns /. 1e9));
            ])
        (Obs.Agg.SMap.bindings node.Obs.Agg.children)

let write_timings_json path ~jobs ~tree timings =
  let experiments =
    List.map
      (fun (name, seconds) ->
        Obs.Json.Obj
          [
            ("name", Obs.Json.Str name);
            ("seconds", Obs.Json.Float seconds);
            ("phases", Obs.Json.List (phases_of tree name));
          ])
      timings
  in
  let doc =
    Obs.Json.Obj
      [
        ("jobs", Obs.Json.Int jobs);
        ("experiments", Obs.Json.List experiments);
      ]
  in
  Obs.Export.write_file path (Obs.Json.to_string_pretty doc)

let () =
  (* split --jobs / --profile / --trace / --timings off the selection *)
  let rec parse_args acc jobs profile trace timings = function
    | [] -> (List.rev acc, jobs, profile, trace, timings)
    | "--jobs" :: v :: rest ->
        (match int_of_string_opt v with
        | Some j when j >= 1 -> parse_args acc (Some j) profile trace timings rest
        | _ ->
            Printf.eprintf "--jobs expects a positive integer, got %S\n" v;
            exit 1)
    | "--fault-seed" :: v :: rest ->
        (match int_of_string_opt v with
        | Some s ->
            Experiments.fault_seed := s;
            parse_args acc jobs profile trace timings rest
        | None ->
            Printf.eprintf "--fault-seed expects an integer, got %S\n" v;
            exit 1)
    | "--drop-rate" :: v :: rest ->
        (match float_of_string_opt v with
        | Some p when p >= 0. && p <= 1. ->
            Experiments.fault_rates := [ p ];
            parse_args acc jobs profile trace timings rest
        | _ ->
            Printf.eprintf "--drop-rate expects a float in [0, 1], got %S\n" v;
            exit 1)
    | "--congest-n" :: v :: rest ->
        (match int_of_string_opt v with
        | Some m when m >= 4 ->
            Experiments.congest_n := m;
            parse_args acc jobs profile trace timings rest
        | _ ->
            Printf.eprintf "--congest-n expects an integer >= 4, got %S\n" v;
            exit 1)
    | "--congest-out" :: p :: rest ->
        Experiments.congest_out := p;
        parse_args acc jobs profile trace timings rest
    | "--engine" :: v :: rest ->
        (match Core.Pipeline.engine_of_string v with
        | Some e ->
            Experiments.engine := e;
            parse_args acc jobs profile trace timings rest
        | None ->
            Printf.eprintf "--engine expects spectral or cutmatching, got %S\n" v;
            exit 1)
    | "--decomp-n" :: v :: rest ->
        (match int_of_string_opt v with
        | Some m when m >= 4 ->
            Experiments.decomp_n := m;
            parse_args acc jobs profile trace timings rest
        | _ ->
            Printf.eprintf "--decomp-n expects an integer >= 4, got %S\n" v;
            exit 1)
    | "--route-n" :: v :: rest ->
        (match int_of_string_opt v with
        | Some x when x >= 4 ->
            Experiments.route_n := x;
            parse_args acc jobs profile trace timings rest
        | _ ->
            Printf.eprintf "--route-n expects an integer >= 4, got %S\n" v;
            exit 1)
    | "--route-demands" :: v :: rest ->
        (match int_of_string_opt v with
        | Some x when x >= 1 ->
            Experiments.route_demands := x;
            parse_args acc jobs profile trace timings rest
        | _ ->
            Printf.eprintf "--route-demands expects a positive integer, got %S\n" v;
            exit 1)
    | "--route-out" :: p :: rest ->
        Experiments.route_out := p;
        parse_args acc jobs profile trace timings rest
    | "--decomp-out" :: p :: rest ->
        Experiments.decomp_out := p;
        parse_args acc jobs profile trace timings rest
    | "--shards" :: v :: rest ->
        (match int_of_string_opt v with
        | Some s when s >= 1 ->
            Experiments.congest_shards := s;
            parse_args acc jobs profile trace timings rest
        | _ ->
            Printf.eprintf "--shards expects a positive integer, got %S\n" v;
            exit 1)
    | "--congest-scale-max" :: v :: rest ->
        (match int_of_string_opt v with
        | Some m when m >= 4 ->
            Experiments.congest_scale_max := m;
            parse_args acc jobs profile trace timings rest
        | _ ->
            Printf.eprintf
              "--congest-scale-max expects an integer >= 4, got %S\n" v;
            exit 1)
    | "--profile" :: p :: rest -> parse_args acc jobs (Some p) trace timings rest
    | "--trace" :: p :: rest -> parse_args acc jobs profile (Some p) timings rest
    | "--timings" :: p :: rest -> parse_args acc jobs profile trace p rest
    | [ (("--jobs" | "--profile" | "--trace" | "--timings" | "--fault-seed"
        | "--drop-rate" | "--congest-n" | "--congest-out" | "--shards"
        | "--congest-scale-max" | "--engine" | "--decomp-n"
        | "--decomp-out" | "--route-n" | "--route-demands"
        | "--route-out") as flag) ] ->
        Printf.eprintf "%s expects a value\n" flag;
        exit 1
    | name :: rest -> parse_args (name :: acc) jobs profile trace timings rest
  in
  let names, jobs_flag, profile, trace, timings_path =
    parse_args [] None None None "BENCH_parallel.json"
      (List.tl (Array.to_list Sys.argv))
  in
  let jobs =
    match jobs_flag with Some j -> j | None -> Parallel.Pool.default_jobs ()
  in
  Experiments.pool := Parallel.Pool.create ~jobs ();
  let selected = if names = [] then List.map fst experiments else names in
  print_endline
    "Benchmark harness: Chang & Su, 'Narrowing the LOCAL-CONGEST Gaps in";
  print_endline
    "Sparse Networks via Expander Decompositions' (PODC 2022) reproduction.";
  Printf.printf "[worker pool: %d job%s]\n" jobs (if jobs = 1 then "" else "s");
  Obs.enable ();
  let timings = ref [] in
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some f ->
          let t0 = Obs.Clock.wall_s () in
          (if name = "timing" then begin
             (* Bechamel measures the uninstrumented hot paths: recording
                spans inside its repetition loops would both distort the
                estimates and buffer millions of trace slices *)
             Obs.disable ();
             Fun.protect ~finally:Obs.enable f
           end
           else Obs.Span.with_ ("exp." ^ name) f);
          let dt = Obs.Clock.wall_s () -. t0 in
          timings := (name, dt) :: !timings;
          Printf.printf "[%s finished in %.1fs]\n" name dt
      | None ->
          Printf.eprintf
            "unknown experiment %S (available: %s)\n" name
            (String.concat ", " (List.map fst experiments));
          exit 1)
    selected;
  let tree, events = Obs.snapshot () in
  write_timings_json timings_path ~jobs ~tree (List.rev !timings);
  (match profile with
  | None -> ()
  | Some path ->
      let meta =
        [
          ("harness", Obs.Json.Str "bench/main.exe");
          ("jobs", Obs.Json.Int jobs);
          ( "experiments",
            Obs.Json.List (List.map (fun s -> Obs.Json.Str s) selected) );
        ]
      in
      Obs.Export.write_file path
        (Obs.Json.to_string_pretty (Obs.Export.profile_json ~meta tree));
      Printf.printf "[profile written to %s]\n" path);
  match trace with
  | None -> ()
  | Some path ->
      Obs.Export.write_file path (Obs.Json.to_string (Obs.Trace.to_json events));
      Printf.printf "[trace written to %s]\n" path
